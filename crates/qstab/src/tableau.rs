//! The Aaronson–Gottesman stabilizer tableau (CHP, quant-ph/0406196).
//!
//! An `n`-qubit stabilizer state is represented by `2n` Pauli rows — `n`
//! destabilizers followed by `n` stabilizers — each a sign bit plus `x`/`z`
//! bit vectors. Clifford gates update the tableau in `O(n)`;
//! measurement in `O(n²)`. Everything here is exact (no floating point).

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

/// A stabilizer state on `n` qubits.
///
/// # Examples
///
/// ```
/// use qstab::Tableau;
///
/// let mut t = Tableau::new(2);
/// t.h(0);
/// t.cx(0, 1); // Bell pair
/// assert_eq!(t.measure_probability_of_one(0), Some(0.5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// Row-major bit matrices: `x[i][q]`, `z[i][q]` for row `i < 2n`.
    x: Vec<Vec<bool>>,
    z: Vec<Vec<bool>>,
    /// Sign bits (`true` = −1).
    r: Vec<bool>,
}

impl Tableau {
    /// Creates the tableau of `|0…0⟩`: destabilizers `Xᵢ`, stabilizers `Zᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a tableau needs at least one qubit");
        let mut x = vec![vec![false; n]; 2 * n];
        let mut z = vec![vec![false; n]; 2 * n];
        let r = vec![false; 2 * n];
        for q in 0..n {
            x[q][q] = true; // destabilizer X_q
            z[n + q][q] = true; // stabilizer Z_q
        }
        Tableau { n, x, z, r }
    }

    /// Creates the tableau of the computational basis state `|bits⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `bits ≥ 2ⁿ`.
    #[must_use]
    pub fn basis(n: usize, bits: u64) -> Self {
        assert!(n >= 64 || bits < (1u64 << n), "basis state out of range");
        let mut t = Tableau::new(n);
        for q in 0..n {
            if (bits >> q) & 1 == 1 {
                t.x_gate(q);
            }
        }
        t
    }

    /// The number of qubits.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    // ---- gates ---------------------------------------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] & self.z[i][q];
            std::mem::swap(&mut self.x[i][q], &mut self.z[i][q]);
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] & self.z[i][q];
            self.z[i][q] ^= self.x[i][q];
        }
    }

    /// Inverse phase gate S† on `q` (S applied three times).
    pub fn sdg(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// Pauli-X on `q`.
    pub fn x_gate(&mut self, q: usize) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i][q];
        }
    }

    /// Pauli-Z on `q`.
    pub fn z_gate(&mut self, q: usize) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q];
        }
    }

    /// Pauli-Y on `q` (`Y = iXZ`; the phases cancel in the tableau).
    pub fn y_gate(&mut self, q: usize) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] ^ self.z[i][q];
        }
    }

    /// √X on `q` (`√X = H·S·H` up to global phase).
    pub fn sx(&mut self, q: usize) {
        self.h(q);
        self.s(q);
        self.h(q);
    }

    /// √X† on `q`.
    pub fn sxdg(&mut self, q: usize) {
        self.h(q);
        self.sdg(q);
        self.h(q);
    }

    /// √Y on `q` — as a Clifford map `X ↦ −Z, Z ↦ X`, i.e. `Z` then `H`.
    pub fn sy(&mut self, q: usize) {
        self.z_gate(q);
        self.h(q);
    }

    /// √Y† on `q` (`H` then `Z`).
    pub fn sydg(&mut self, q: usize) {
        self.h(q);
        self.z_gate(q);
    }

    /// CNOT with control `c`, target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t` or either is out of range.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.check(c);
        self.check(t);
        assert_ne!(c, t, "control equals target");
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][c] & self.z[i][t] & (self.x[i][t] ^ self.z[i][c] ^ true);
            self.x[i][t] ^= self.x[i][c];
            self.z[i][c] ^= self.z[i][t];
        }
    }

    /// Controlled-Z (`H(t) · CX · H(t)`).
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// SWAP (three CNOTs).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    fn check(&self, q: usize) {
        assert!(q < self.n, "qubit {q} out of range for {} qubits", self.n);
    }

    // ---- measurement -----------------------------------------------------------

    /// The probability that measuring qubit `q` yields 1:
    /// `Some(0.0 | 0.5 | 1.0)` — stabilizer measurements are always one of
    /// these.
    #[must_use]
    pub fn measure_probability_of_one(&self, q: usize) -> Option<f64> {
        self.check(q);
        // Random outcome iff some stabilizer anticommutes with Z_q (has x
        // bit set at q).
        let random = (self.n..2 * self.n).any(|i| self.x[i][q]);
        if random {
            return Some(0.5);
        }
        // Deterministic: compute the sign of Z_q as a product of
        // stabilizers (standard 2n-row scratch rowsum).
        let mut scratch = PauliRow::identity(self.n);
        for i in 0..self.n {
            if self.x[i][q] {
                // Destabilizer i anticommutes with Z_q → stabilizer i
                // participates in the product.
                scratch.mul_assign(&self.row(self.n + i));
            }
        }
        Some(if scratch.sign { 1.0 } else { 0.0 })
    }

    /// Measures qubit `q`, collapsing the state; returns the outcome bit.
    pub fn measure(&mut self, q: usize, rng: &mut StdRng) -> bool {
        self.check(q);
        let p = (self.n..2 * self.n).find(|&i| self.x[i][q]);
        match p {
            Some(p) => {
                // Random outcome.
                let outcome: bool = rng.gen();
                // All other rows anticommuting with Z_q get multiplied by
                // row p.
                let row_p = self.row(p);
                for i in 0..2 * self.n {
                    if i != p && self.x[i][q] {
                        let mut acc = self.row(i);
                        acc.mul_assign(&row_p);
                        if i < self.n {
                            // Destabilizer signs are irrelevant bookkeeping
                            // (the paired destabilizer anticommutes with
                            // row p and picks up a meaningless ±i).
                            acc.sign = false;
                            acc.imaginary = false;
                        }
                        self.set_row(i, &acc);
                    }
                }
                // Destabilizer p−n gets the old stabilizer row; stabilizer
                // p becomes ±Z_q.
                let old = self.row(p);
                self.set_row(p - self.n, &old);
                let mut zrow = PauliRow::identity(self.n);
                zrow.z[q] = true;
                zrow.sign = outcome;
                self.set_row(p, &zrow);
                outcome
            }
            None => {
                // Deterministic.
                self.measure_probability_of_one(q)
                    .expect("deterministic branch")
                    > 0.5
            }
        }
    }

    // ---- canonical form & equality ---------------------------------------------

    /// Brings the *stabilizer half* into a canonical reduced row-echelon
    /// form (destabilizers are discarded), so two tableaus describe the
    /// same state iff their canonical stabilizer rows are identical.
    #[must_use]
    pub fn canonical_stabilizers(&self) -> Vec<PauliRow> {
        let mut rows: Vec<PauliRow> = (self.n..2 * self.n).map(|i| self.row(i)).collect();
        let n = self.n;
        let mut pivot = 0usize;
        // First sweep: X (and Y) pivots, column by column.
        for q in 0..n {
            if let Some(found) = (pivot..n).find(|&i| rows[i].x[q]) {
                rows.swap(pivot, found);
                for i in 0..n {
                    if i != pivot && rows[i].x[q] {
                        let (a, b) = pick_two(&mut rows, i, pivot);
                        a.mul_assign(b);
                    }
                }
                pivot += 1;
            }
        }
        // Second sweep: Z pivots among the remaining rows (which are X-free
        // after the first sweep). The pivot row has no X bits, so
        // multiplying any row by it preserves the X echelon — eliminate the
        // Z bit from *every* other row for a unique form.
        for q in 0..n {
            if let Some(found) = (pivot..n).find(|&i| rows[i].z[q]) {
                debug_assert!(rows[found].x.iter().all(|&b| !b));
                rows.swap(pivot, found);
                for i in 0..n {
                    if i != pivot && rows[i].z[q] && !rows[i].x[q] {
                        let (a, b) = pick_two(&mut rows, i, pivot);
                        a.mul_assign(b);
                    }
                }
                pivot += 1;
            }
        }
        rows
    }

    /// Returns `true` if the signed Pauli `p` stabilizes this state
    /// (`p|ψ⟩ = |ψ⟩`), via Gaussian reduction against the echelonized
    /// stabilizer generators.
    ///
    /// # Panics
    ///
    /// Panics if `p`'s qubit count differs.
    #[must_use]
    pub fn stabilizes(&self, p: &PauliRow) -> bool {
        assert_eq!(p.x.len(), self.n, "Pauli row qubit count differs");
        reduces_to_identity(&self.canonical_stabilizers(), p)
    }

    /// Returns `true` if the two tableaus describe the same quantum state:
    /// every stabilizer generator of `other` stabilizes `self` (mutual
    /// stabilization; both groups have full rank `n`, so one-sided
    /// containment is equality). Global phase is not represented by
    /// stabilizer states, so this is equality up to global phase.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn same_state(&self, other: &Tableau) -> bool {
        assert_eq!(self.n, other.n, "qubit counts differ");
        let mine = self.canonical_stabilizers();
        other
            .canonical_stabilizers()
            .iter()
            .all(|row| reduces_to_identity(&mine, row))
    }

    /// Finds a stabilizer generator of `self` that does *not* stabilize
    /// `other` — a measurable witness distinguishing the states (measuring
    /// this Pauli yields +1 on `self` with certainty but not on `other`).
    #[must_use]
    pub fn distinguishing_pauli(&self, other: &Tableau) -> Option<PauliRow> {
        let theirs = other.canonical_stabilizers();
        self.canonical_stabilizers()
            .into_iter()
            .find(|row| !reduces_to_identity(&theirs, row))
    }

    fn row(&self, i: usize) -> PauliRow {
        PauliRow {
            x: self.x[i].clone(),
            z: self.z[i].clone(),
            sign: self.r[i],
            imaginary: false,
        }
    }

    fn set_row(&mut self, i: usize, row: &PauliRow) {
        debug_assert!(!row.imaginary, "tableau rows always carry real phases");
        self.x[i] = row.x.clone();
        self.z[i] = row.z.clone();
        self.r[i] = row.sign;
    }
}

impl fmt::Display for Tableau {
    /// Renders the stabilizer generators, one per line (e.g. `+XXI`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in self.n..2 * self.n {
            if i > self.n {
                writeln!(f)?;
            }
            write!(f, "{}", self.row(i))?;
        }
        Ok(())
    }
}

/// One phased Pauli operator (a tableau row): prefactor `i^phase ∈ {1, i, −1, −i}`.
///
/// Rows of a tableau and group-internal products always carry real phases
/// (`sign` ∈ {+1, −1}); imaginary phases only arise transiently when
/// reducing a *non-member* Pauli during the [`Tableau::stabilizes`] test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliRow {
    /// X bits per qubit.
    pub x: Vec<bool>,
    /// Z bits per qubit.
    pub z: Vec<bool>,
    /// `true` = the real part of the prefactor is −1 (phase 2 or 3).
    pub sign: bool,
    /// `true` = the prefactor is imaginary (phase 1 or 3).
    pub imaginary: bool,
}

impl PauliRow {
    /// The identity row.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        PauliRow {
            x: vec![false; n],
            z: vec![false; n],
            sign: false,
            imaginary: false,
        }
    }

    /// Multiplies `other` into `self`, tracking the full `i^phase`
    /// prefactor via the standard `g`-function bookkeeping. Products of
    /// commuting Paulis stay real; anticommuting products pick up ±i
    /// (which marks a non-member during [`Tableau::stabilizes`]).
    pub fn mul_assign(&mut self, other: &PauliRow) {
        // Phase exponent of i accumulated per qubit.
        let mut phase = 0i32; // modulo 4
        for q in 0..self.x.len() {
            phase += g(self.x[q], self.z[q], other.x[q], other.z[q]);
            self.x[q] ^= other.x[q];
            self.z[q] ^= other.z[q];
        }
        phase += 2 * i32::from(self.sign) + i32::from(self.imaginary);
        phase += 2 * i32::from(other.sign) + i32::from(other.imaginary);
        let phase = phase.rem_euclid(4);
        self.sign = phase == 2 || phase == 3;
        self.imaginary = phase == 1 || phase == 3;
    }
}

impl fmt::Display for PauliRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.sign, self.imaginary) {
            (false, false) => write!(f, "+")?,
            (true, false) => write!(f, "-")?,
            (false, true) => write!(f, "+i")?,
            (true, true) => write!(f, "-i")?,
        }
        // Most significant qubit first, matching ket labels.
        for q in (0..self.x.len()).rev() {
            let c = match (self.x[q], self.z[q]) {
                (false, false) => 'I',
                (true, false) => 'X',
                (false, true) => 'Z',
                (true, true) => 'Y',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Reduces `p` against echelonized generator rows and reports whether the
/// residue is the (+1-phased) identity — i.e. whether `p` belongs to the
/// generated group with positive sign.
fn reduces_to_identity(rows: &[PauliRow], p: &PauliRow) -> bool {
    let mut p = p.clone();
    for row in rows {
        if let Some(q) = row.x.iter().position(|&b| b) {
            if p.x[q] {
                p.mul_assign(row);
            }
        } else if let Some(q) = row.z.iter().position(|&b| b) {
            if p.z[q] {
                p.mul_assign(row);
            }
        }
    }
    p.x.iter().all(|&b| !b) && p.z.iter().all(|&b| !b) && !p.sign && !p.imaginary
}

/// Aaronson–Gottesman `g(x1, z1, x2, z2)`: the exponent of `i` produced
/// when multiplying the single-qubit Paulis `(x1 z1) · (x2 z2)`.
fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        // X · P
        (true, false) => i32::from(z2) * (2 * i32::from(x2) - 1),
        // Z · P
        (false, true) => i32::from(x2) * (1 - 2 * i32::from(z2)),
        // Y · P
        (true, true) => i32::from(z2) - i32::from(x2),
    }
}

fn pick_two<T>(slice: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = slice.split_at_mut(j);
        (&mut a[i], &mut b[0])
    } else {
        let (a, b) = slice.split_at_mut(i);
        (&mut b[0], &mut a[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_state_stabilizers() {
        let t = Tableau::new(2);
        assert_eq!(t.to_string(), "+IZ\n+ZI");
        assert_eq!(t.measure_probability_of_one(0), Some(0.0));
        assert_eq!(t.measure_probability_of_one(1), Some(0.0));
    }

    #[test]
    fn basis_state_signs() {
        let t = Tableau::basis(2, 0b10);
        assert_eq!(t.measure_probability_of_one(0), Some(0.0));
        assert_eq!(t.measure_probability_of_one(1), Some(1.0));
    }

    #[test]
    fn plus_state_is_random() {
        let mut t = Tableau::new(1);
        t.h(0);
        assert_eq!(t.measure_probability_of_one(0), Some(0.5));
    }

    #[test]
    fn bell_pair_correlations() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        assert_eq!(t.measure_probability_of_one(0), Some(0.5));
        // Measure qubit 0; qubit 1 must then be deterministic and equal.
        let mut rng = StdRng::seed_from_u64(5);
        let bit = t.measure(0, &mut rng);
        let p1 = t.measure_probability_of_one(1).unwrap();
        assert_eq!(p1 > 0.5, bit);
    }

    #[test]
    fn gate_identities_hold() {
        // HH = I, SSSS = I, XX = I, CZ symmetric.
        let reference = Tableau::basis(2, 0b01);
        let mut t = reference.clone();
        t.h(0);
        t.h(0);
        assert!(t.same_state(&reference));
        let mut t = reference.clone();
        for _ in 0..4 {
            t.s(1);
        }
        assert!(t.same_state(&reference));
        let mut a = reference.clone();
        let mut b = reference.clone();
        a.h(0);
        a.h(1);
        a.cz(0, 1);
        b.h(0);
        b.h(1);
        b.cz(1, 0);
        assert!(a.same_state(&b));
    }

    #[test]
    fn swap_moves_excitation() {
        let mut t = Tableau::basis(3, 0b001);
        t.swap(0, 2);
        assert_eq!(t.measure_probability_of_one(0), Some(0.0));
        assert_eq!(t.measure_probability_of_one(2), Some(1.0));
    }

    #[test]
    fn y_equals_sxs_up_to_phase() {
        // Y = S·X·S† as states (global phase invisible to stabilizers).
        let mut a = Tableau::basis(1, 0);
        a.h(0); // make it non-trivial
        let mut b = a.clone();
        a.y_gate(0);
        b.sdg(0);
        b.x_gate(0);
        b.s(0);
        assert!(a.same_state(&b));
    }

    #[test]
    fn canonical_form_is_stable_under_row_mixing() {
        // GHZ built two different ways gives identical canonical rows.
        let mut a = Tableau::new(3);
        a.h(0);
        a.cx(0, 1);
        a.cx(1, 2);
        let mut b = Tableau::new(3);
        b.h(0);
        b.cx(0, 2);
        b.cx(0, 1);
        assert!(a.same_state(&b));
        let mut c = Tableau::new(3);
        c.h(2);
        c.cx(2, 1);
        c.cx(1, 0);
        assert!(a.same_state(&c));
    }

    #[test]
    fn different_states_are_distinguished() {
        let mut a = Tableau::new(2);
        a.h(0);
        a.cx(0, 1);
        let mut b = a.clone();
        b.z_gate(1); // |00⟩ − |11⟩ vs |00⟩ + |11⟩
        assert!(!a.same_state(&b));
        let mut c = a.clone();
        c.x_gate(0);
        assert!(!a.same_state(&c));
    }

    #[test]
    fn measurement_collapse_is_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..10u64 {
            let mut t = Tableau::new(4);
            t.h(0);
            t.cx(0, 1);
            t.cx(1, 2);
            t.cx(2, 3);
            let _ = seed;
            let b0 = t.measure(0, &mut rng);
            // GHZ: all qubits now deterministic and equal to b0.
            for q in 1..4 {
                assert_eq!(
                    t.measure_probability_of_one(q),
                    Some(if b0 { 1.0 } else { 0.0 })
                );
            }
        }
    }

    #[test]
    fn pauli_row_products() {
        // X · Z = −iY → as stabilizer-group elements only ±1 phases occur;
        // check Y·Y = I and Z·Z = I bookkeeping instead.
        let n = 1;
        let mut y = PauliRow::identity(n);
        y.x[0] = true;
        y.z[0] = true;
        let y2 = y.clone();
        y.mul_assign(&y2);
        assert_eq!(y, PauliRow::identity(n));
        let mut z = PauliRow::identity(n);
        z.z[0] = true;
        let z2 = z.clone();
        z.mul_assign(&z2);
        assert_eq!(z, PauliRow::identity(n));
    }

    #[test]
    fn display_renders_paulis() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        let text = t.to_string();
        assert!(text.contains("XX"));
        assert!(text.contains("ZZ"));
    }
}
