//! Configuration of the equivalence checking flow.

use std::sync::Arc;
use std::time::Duration;

use crate::scheduler::EventSink;
pub use qdd::ApplicationScheme;

/// When two output states (or system matrices) count as "equal".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Criterion {
    /// Exact equality: `⟨uᵢ|uᵢ′⟩ = 1` — the paper's formulation.
    Strict,
    /// Equality up to one global phase: `|⟨uᵢ|uᵢ′⟩| = 1`. The physically
    /// meaningful notion; the default.
    #[default]
    UpToGlobalPhase,
}

/// How the `r` stimuli are chosen (see [`qstim`] for the generators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StimulusStrategy {
    /// Uniformly random distinct basis states (the paper's choice; the
    /// default). Detection probability per run equals the differing-column
    /// fraction regardless of where the error sits.
    #[default]
    Random,
    /// The first `r` basis states `|0⟩, |1⟩, …` — a naive baseline kept for
    /// ablation: it systematically misses errors gated on high qubits being
    /// `|1⟩` (their differing columns live at high indices).
    Sequential,
    /// Random product states: every qubit gets an independent Haar-random
    /// single-qubit state via a seeded `U3` layer. A `c`-controlled fault
    /// is hit with probability `1 − 2^{1−c}`-ish per run instead of
    /// `2^{−c}` — the power-of-simulation upgrade over classical stimuli.
    Product,
    /// Uniformly random stabilizer states, prepared by a seeded Clifford
    /// prefix circuit drawn through `qstab`. Entangled across qubits, so a
    /// single run touches *every* column of `U†U'` at once; still cheap to
    /// sample and exactly representable.
    Stabilizer,
}

impl StimulusStrategy {
    /// Every strategy, in ablation-report order.
    pub const ALL: [StimulusStrategy; 4] = [
        StimulusStrategy::Random,
        StimulusStrategy::Sequential,
        StimulusStrategy::Product,
        StimulusStrategy::Stabilizer,
    ];

    /// A stable lowercase identifier (used in campaign JSON and CLI flags).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            StimulusStrategy::Random => "basis",
            StimulusStrategy::Sequential => "sequential",
            StimulusStrategy::Product => "product",
            StimulusStrategy::Stabilizer => "stabilizer",
        }
    }

    /// Parses a [`slug`](StimulusStrategy::slug) (also accepts `random` as
    /// an alias for the basis strategy).
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "basis" | "random" => Ok(StimulusStrategy::Random),
            "sequential" => Ok(StimulusStrategy::Sequential),
            "product" => Ok(StimulusStrategy::Product),
            "stabilizer" => Ok(StimulusStrategy::Stabilizer),
            other => Err(format!(
                "unknown stimulus strategy `{other}` (expected basis|sequential|product|stabilizer)"
            )),
        }
    }
}

impl std::fmt::Display for StimulusStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// Which engine runs the `r` simulations (see [`crate::backend`] for the
/// engines themselves — this is the serializable *selector* the trait
/// implementations are dispatched on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Dense statevector simulation (`qsim`) — `O(2ⁿ)` memory, fast and
    /// predictable; the default.
    #[default]
    Statevector,
    /// Decision-diagram simulation (`qdd`) — the paper's engine \[25\];
    /// exponentially compact on structured states.
    DecisionDiagram,
    /// Stabilizer/CHP tableau simulation (`qstab`) — `O(n²)` per probe on
    /// Clifford-only circuit segments, falling back to the dense engine for
    /// probes that encounter a non-Clifford gate. Unlocks register sizes
    /// (`n ≫ 20`) no dense engine reaches for the Clifford-dominated
    /// workload class.
    Stab,
    /// Matrix-product-state tensor-network simulation (`qmpo`) — memory
    /// scales with the entanglement the circuit actually builds (bond
    /// dimension), not with `2ⁿ`. Exact while the bond dimension stays
    /// under [`Config::chi_max`]; beyond it the engine truncates, tracks
    /// the accumulated error, and the flow downgrades "no counterexample
    /// found" verdicts accordingly.
    Mps,
    /// Automatic selection: pick one of the four concrete engines from the
    /// register width and gate mix of the circuit pair (Clifford-only →
    /// `stab`, small registers → `sv`, mid-size → `dd`, else `mps`).
    /// Resolved once per check, before any simulation runs; the choice is
    /// reported through the event sink. Not a concrete engine, so it is
    /// excluded from [`BackendKind::ALL`].
    Auto,
}

impl BackendKind {
    /// Every *concrete* backend, in ablation-report order.
    /// [`BackendKind::Auto`] is a selector, not an engine, and is excluded.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Statevector,
        BackendKind::DecisionDiagram,
        BackendKind::Stab,
        BackendKind::Mps,
    ];

    /// A stable lowercase identifier (used in campaign JSON and CLI flags).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            BackendKind::Statevector => "sv",
            BackendKind::DecisionDiagram => "dd",
            BackendKind::Stab => "stab",
            BackendKind::Mps => "mps",
            BackendKind::Auto => "auto",
        }
    }

    /// Parses a [`slug`](BackendKind::slug) (also accepts the long forms
    /// `statevector`, `decision-diagram`, `stabilizer`, `tensor-network`
    /// and `automatic`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sv" | "statevector" => Ok(BackendKind::Statevector),
            "dd" | "decision-diagram" | "decisiondiagram" => Ok(BackendKind::DecisionDiagram),
            "stab" | "stabilizer" => Ok(BackendKind::Stab),
            "mps" | "tensor-network" | "tensornetwork" => Ok(BackendKind::Mps),
            "auto" | "automatic" => Ok(BackendKind::Auto),
            other => Err(format!(
                "unknown backend `{other}` (expected sv|dd|stab|mps|auto)"
            )),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// Which complete equivalence checking routine runs after the simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fallback {
    /// The improved alternating scheme `G → 𝕀 ← G'` of \[22\]; the default.
    #[default]
    Alternating,
    /// Construct and compare both complete system matrices (\[21\], \[26\]).
    ConstructAndCompare,
    /// No functional check: after `r` agreeing simulations report
    /// "probably equivalent" immediately.
    None,
}

/// Tunable parameters of the flow (defaults follow the paper: `r = 10`
/// random basis states, then a complete DD check under a deadline).
///
/// # Examples
///
/// ```
/// use qcec::{Config, Fallback};
/// use std::time::Duration;
///
/// let config = Config::new()
///     .with_simulations(10)
///     .with_seed(0xBEEF)
///     .with_deadline(Some(Duration::from_secs(60)))
///     .with_fallback(Fallback::Alternating);
/// assert_eq!(config.simulations, 10);
/// ```
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random basis-state simulations `r` (paper default: 10).
    pub simulations: usize,
    /// RNG seed for choosing the basis states (runs are reproducible).
    pub seed: u64,
    /// Fidelity slack: outputs with fidelity below `1 − fidelity_tolerance`
    /// prove non-equivalence.
    pub fidelity_tolerance: f64,
    /// Equality notion.
    pub criterion: Criterion,
    /// Simulation engine.
    pub backend: BackendKind,
    /// Complete equivalence checking routine.
    pub fallback: Fallback,
    /// How stimulus basis states are chosen.
    pub stimuli: StimulusStrategy,
    /// Worker threads for the flow. With `1` (the default) everything runs
    /// sequentially on the calling thread; with more, [`check_equivalence`]
    /// (crate::check_equivalence) fans the stimuli across a
    /// [`scheduler`](crate::scheduler) pool of this many workers (the
    /// verdict stays deterministic per seed). When [`run_simulations`]
    /// (crate::run_simulations) is called directly, this is instead the
    /// statevector backend's kernel thread count.
    pub threads: usize,
    /// Wall-clock budget for the *complete* check (the simulations are
    /// never aborted; they are the cheap part). `None` = unbounded.
    pub deadline: Option<Duration>,
    /// Node budget for decision diagrams (memory analogue of the deadline).
    pub dd_node_limit: usize,
    /// Bond-dimension cap `χ` for the tensor-network engine
    /// ([`BackendKind::Mps`]): two-site splits keep at most this many
    /// singular values. While no split exceeds the cap the engine is
    /// *exact* (truncation error is identically zero); once it truncates,
    /// the flow reports the accumulated error and never claims plain
    /// equivalence.
    pub chi_max: usize,
    /// Portfolio mode: with `threads > 1`, race the complete DD check
    /// against the simulation pool instead of running it afterwards —
    /// first definitive verdict wins. The verdict *class* is unchanged,
    /// but whether a non-equivalence comes with a simulation
    /// counterexample may then depend on which side wins the race.
    pub portfolio: bool,
    /// Clifford peeling: before any simulation or complete check, strip
    /// the longest common prefix and suffix of *canonically identical
    /// Clifford* gates from both circuits (see [`peel`](crate::peel)).
    /// Sound for both criteria (conjugating by a shared unitary preserves
    /// identity up to global phase) and often shrinks the residual pair
    /// dramatically on compiled-vs-original workloads. Off by default: the
    /// residual circuits see different stimuli *internally* (the stripped
    /// prefix no longer randomises them), so verdict-equivalent runs are
    /// not bit-identical with the unpeeled flow.
    pub peel: bool,
    /// Stimuli probed per batch. With `1` (the default) every probe runs
    /// alone, reproducing the historical behaviour bit for bit; with `k`,
    /// the simulation stage claims and probes `k` stimuli at a time — the
    /// statevector backend streams them through a shared lane-major arena
    /// (gate decode amortized `k`×, cache-hot inner loops), other engines
    /// loop their single-stimulus path. Batch outcomes are bit-identical
    /// per stimulus, so the verdict (class, counterexample run index,
    /// overlap bits) never depends on this knob — it is a pure
    /// throughput/latency trade and is excluded from the verdict
    /// fingerprint ([`ConfigDigest`](crate::service::ConfigDigest)).
    pub batch_size: usize,
    /// Gate-interleaving policy of the alternating complete check (see
    /// [`qdd::ApplicationScheme`]): which side of `G → 𝕀 ← G'` advances
    /// next. Scheme-independent verdicts, scheme-dependent intermediate
    /// DD sizes — proportional (the default) reproduces the historical
    /// behaviour bit for bit.
    pub scheme: ApplicationScheme,
    /// Receiver for the scheduler's [`RunEvent`](crate::scheduler::RunEvent)s
    /// (per-stage timings, per-simulation outcomes, cancellations).
    /// `None` = discard. Only the scheduled path (`threads > 1`) and the
    /// pipeline driver emit events.
    pub event_sink: Option<Arc<dyn EventSink>>,
}

impl PartialEq for Config {
    /// Sinks are compared by identity (same `Arc`), everything else by
    /// value — two configurations driving different sinks are genuinely
    /// not interchangeable.
    fn eq(&self, other: &Self) -> bool {
        let sinks_eq = match (&self.event_sink, &other.event_sink) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.simulations == other.simulations
            && self.seed == other.seed
            && self.fidelity_tolerance == other.fidelity_tolerance
            && self.criterion == other.criterion
            && self.backend == other.backend
            && self.fallback == other.fallback
            && self.stimuli == other.stimuli
            && self.threads == other.threads
            && self.deadline == other.deadline
            && self.dd_node_limit == other.dd_node_limit
            && self.chi_max == other.chi_max
            && self.portfolio == other.portfolio
            && self.peel == other.peel
            && self.batch_size == other.batch_size
            && self.scheme == other.scheme
            && sinks_eq
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            simulations: 10,
            seed: 0,
            fidelity_tolerance: 1e-8,
            criterion: Criterion::default(),
            backend: BackendKind::default(),
            fallback: Fallback::default(),
            stimuli: StimulusStrategy::default(),
            threads: 1,
            deadline: None,
            dd_node_limit: qdd::Package::DEFAULT_NODE_LIMIT,
            chi_max: qmpo::DEFAULT_CHI_MAX,
            portfolio: false,
            peel: false,
            batch_size: 1,
            scheme: ApplicationScheme::default(),
            event_sink: None,
        }
    }
}

impl Config {
    /// Creates the default configuration (`r = 10`, statevector backend,
    /// alternating fallback, unbounded deadline).
    #[must_use]
    pub fn new() -> Self {
        Config::default()
    }

    /// Sets the number of random simulations `r`.
    #[must_use]
    pub fn with_simulations(mut self, r: usize) -> Self {
        self.simulations = r;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the equality notion.
    #[must_use]
    pub fn with_criterion(mut self, criterion: Criterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Sets the simulation engine.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the complete-check routine.
    #[must_use]
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = fallback;
        self
    }

    /// Sets the stimulus-selection strategy.
    #[must_use]
    pub fn with_stimuli(mut self, stimuli: StimulusStrategy) -> Self {
        self.stimuli = stimuli;
        self
    }

    /// Sets the worker thread count (see [`Config::threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Enables or disables portfolio mode (racing the complete check
    /// against the simulation pool; see [`Config::portfolio`]). Has no
    /// effect unless `threads > 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcec::Config;
    ///
    /// let config = Config::new().with_threads(4).with_portfolio(true);
    /// let g = qcirc::generators::qft(4, true);
    /// let opt = qcirc::optimize::optimize(&g);
    /// let result = qcec::check_equivalence(&g, &opt, &config).unwrap();
    /// assert!(result.outcome.is_equivalent());
    /// ```
    #[must_use]
    pub fn with_portfolio(mut self, portfolio: bool) -> Self {
        self.portfolio = portfolio;
        self
    }

    /// Enables or disables Clifford peeling (see [`Config::peel`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use qcec::Config;
    ///
    /// let g = qcirc::generators::qft(4, true);
    /// let opt = qcirc::optimize::optimize(&g);
    /// let result = qcec::check_equivalence(&g, &opt, &Config::new().with_peel(true)).unwrap();
    /// assert!(result.outcome.is_equivalent());
    /// ```
    #[must_use]
    pub fn with_peel(mut self, peel: bool) -> Self {
        self.peel = peel;
        self
    }

    /// Sets the per-batch stimulus count of the simulation stage (see
    /// [`Config::batch_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcec::Config;
    ///
    /// let g = qcirc::generators::qft(4, true);
    /// let opt = qcirc::optimize::optimize(&g);
    /// let config = Config::new().with_batch_size(8);
    /// let result = qcec::check_equivalence(&g, &opt, &config).unwrap();
    /// assert!(result.outcome.is_equivalent());
    /// ```
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "need at least one stimulus per batch");
        self.batch_size = batch_size;
        self
    }

    /// Sets the gate-interleaving policy of the alternating complete
    /// check (see [`Config::scheme`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use qcec::{ApplicationScheme, Config};
    ///
    /// let g = qcirc::generators::qft(4, true);
    /// let opt = qcirc::optimize::optimize(&g);
    /// let config = Config::new().with_scheme(ApplicationScheme::GateCost);
    /// let result = qcec::check_equivalence(&g, &opt, &config).unwrap();
    /// assert!(result.outcome.is_equivalent());
    /// ```
    #[must_use]
    pub fn with_scheme(mut self, scheme: ApplicationScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Installs an event sink receiving the scheduler's structured
    /// [`RunEvent`](crate::scheduler::RunEvent)s.
    #[must_use]
    pub fn with_event_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.event_sink = Some(sink);
        self
    }

    /// Sets the wall-clock budget for the complete check.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the decision-diagram node budget.
    #[must_use]
    pub fn with_dd_node_limit(mut self, limit: usize) -> Self {
        self.dd_node_limit = limit;
        self
    }

    /// Sets the tensor-network bond-dimension cap (see [`Config::chi_max`]).
    ///
    /// # Panics
    ///
    /// Panics if `chi_max` is zero.
    #[must_use]
    pub fn with_chi_max(mut self, chi_max: usize) -> Self {
        assert!(chi_max > 0, "need a positive bond-dimension cap");
        self.chi_max = chi_max;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = Config::default();
        assert_eq!(c.simulations, 10);
        assert_eq!(c.criterion, Criterion::UpToGlobalPhase);
        assert_eq!(c.backend, BackendKind::Statevector);
        assert_eq!(c.fallback, Fallback::Alternating);
        assert!(c.deadline.is_none());
    }

    #[test]
    fn builder_chains() {
        let c = Config::new()
            .with_simulations(3)
            .with_seed(7)
            .with_criterion(Criterion::Strict)
            .with_backend(BackendKind::DecisionDiagram)
            .with_fallback(Fallback::None)
            .with_deadline(Some(Duration::from_millis(5)))
            .with_dd_node_limit(1000);
        assert_eq!(c.simulations, 3);
        assert_eq!(c.seed, 7);
        assert_eq!(c.criterion, Criterion::Strict);
        assert_eq!(c.backend, BackendKind::DecisionDiagram);
        assert_eq!(c.fallback, Fallback::None);
        assert_eq!(c.dd_node_limit, 1000);
    }

    #[test]
    fn scheduler_knobs_default_off() {
        let c = Config::default();
        assert_eq!(c.threads, 1);
        assert_eq!(c.batch_size, 1);
        assert!(!c.portfolio);
        assert!(!c.peel);
        assert!(c.event_sink.is_none());
        let c = c
            .with_threads(4)
            .with_portfolio(true)
            .with_peel(true)
            .with_batch_size(8);
        assert_eq!(c.threads, 4);
        assert_eq!(c.batch_size, 8);
        assert!(c.portfolio);
        assert!(c.peel);
        assert_ne!(Config::default(), Config::default().with_batch_size(8));
    }

    #[test]
    #[should_panic(expected = "at least one stimulus per batch")]
    fn zero_batch_size_rejected() {
        let _ = Config::new().with_batch_size(0);
    }

    #[test]
    fn backend_kind_slugs_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.slug()), Ok(kind));
        }
        assert_eq!(BackendKind::parse("stabilizer"), Ok(BackendKind::Stab));
        assert_eq!(BackendKind::parse("tensor-network"), Ok(BackendKind::Mps));
        assert_eq!(BackendKind::parse("auto"), Ok(BackendKind::Auto));
        assert!(!BackendKind::ALL.contains(&BackendKind::Auto));
        let e = BackendKind::parse("qubit-abacus").unwrap_err();
        assert!(e.contains("sv|dd|stab"), "{e}");
    }

    #[test]
    fn chi_max_defaults_and_builds() {
        let c = Config::default();
        assert_eq!(c.chi_max, qmpo::DEFAULT_CHI_MAX);
        let c = c.with_chi_max(16);
        assert_eq!(c.chi_max, 16);
        assert_ne!(Config::default(), Config::default().with_chi_max(16));
    }

    #[test]
    fn sinks_compare_by_identity() {
        use crate::scheduler::CollectingSink;
        let sink: Arc<dyn crate::scheduler::EventSink> = Arc::new(CollectingSink::new());
        let a = Config::default().with_event_sink(sink.clone());
        let b = Config::default().with_event_sink(sink);
        let c = Config::default().with_event_sink(Arc::new(CollectingSink::new()));
        assert_eq!(a, b, "same sink, same config");
        assert_ne!(a, c, "different sinks are different configs");
        assert_ne!(a, Config::default());
        assert_eq!(Config::default(), Config::default());
    }
}
