//! Verify Grover's algorithm across an ancilla-based decomposition — the
//! scenario behind the paper's "Grover k" rows, where the decomposed
//! realization runs on more qubits than the algorithm (dirty-ancilla
//! V-chains for the multi-controlled oracles).
//!
//! Run with `cargo run --release -p qcec-examples --bin grover_flow`.

use qcec::{check_equivalence, check_equivalence_default, Config, Criterion};
use qcirc::{decompose, generators};
use qsim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 6;
    let marked = 0b101101 & ((1 << k) - 1);
    let iterations = generators::optimal_grover_iterations(k);
    let algorithm = generators::grover(k, marked, iterations);
    println!(
        "Grover {k}: marked |{marked:0k$b}⟩, {iterations} iterations, {} gates on {k} qubits",
        algorithm.len(),
    );

    // Sanity: the algorithm actually finds the marked element.
    let out = Simulator::new().run_basis(&algorithm, 0);
    println!("P(measure marked element) = {:.3}", out.probability(marked));

    // Decompose with dirty ancillas: the register grows (paper: Grover 6 → n = 9).
    let lowered = decompose::decompose_with_dirty_ancillas(&algorithm);
    println!(
        "decomposed: {} gates on {} qubits (elementary: {})",
        lowered.len(),
        lowered.n_qubits(),
        lowered.is_elementary()
    );

    // Equivalence check — widen the algorithm to the ancilla register.
    let widened = algorithm.widened(lowered.n_qubits());
    let result = check_equivalence_default(&widened, &lowered)?;
    println!("flow verdict: {result}");
    assert!(result.outcome.is_equivalent());

    // Strict vs up-to-phase criterion.
    let strict = check_equivalence(
        &widened,
        &lowered,
        &Config::new().with_criterion(Criterion::Strict),
    )?;
    println!("strict criterion: {strict}");

    // And the negative case: an off-by-one marked element in the oracle.
    let wrong = generators::grover(k, marked ^ 1, iterations);
    let wrong_lowered = decompose::decompose_with_dirty_ancillas(&wrong);
    let bad = check_equivalence_default(&widened, &wrong_lowered)?;
    println!("wrong-oracle verdict: {bad}");
    assert!(bad.outcome.is_not_equivalent());
    Ok(())
}
