//! A stabilizer-circuit simulator (Aaronson–Gottesman CHP tableau) with a
//! polynomial-time equivalence probe for Clifford circuits.
//!
//! This crate extends the workspace's reproduction of the DAC'20
//! simulation-based equivalence checking paper: when both circuits are
//! Clifford (H, S, Paulis, CX, CZ, SWAP, π/2-rotations), every one of the
//! paper's random basis-state simulations runs in `O(m·n)` bit operations
//! instead of `O(m·2ⁿ)` amplitudes, and output comparison is exact
//! stabilizer-group equality — so the flow's simulation stage scales to
//! hundreds of qubits.
//!
//! * [`Tableau`] — the stabilizer state: gates, measurement, canonical
//!   form, state equality, distinguishing-Pauli extraction.
//! * [`run`] / [`apply_gate`] / [`is_clifford`] — `qcirc` integration.
//! * [`check_clifford_equivalence`] — the paper's flow, stabilizer edition.
//! * [`inner_product_magnitude`] — the deterministic, measurement-free
//!   overlap `|⟨ψ_a|ψ_b⟩|` of two stabilizer states (always `0` or
//!   `2^{−k/2}`), the quantity `qcec`'s stab probe engine reports.
//! * [`random_stabilizer_rows`] / [`synthesize_state`] — uniform random
//!   stabilizer states and their Clifford preparation circuits (the
//!   sampling engine behind `qstim`'s stabilizer stimuli).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), qstab::NotCliffordError> {
//! use qstab::{check_clifford_equivalence, CliffordVerdict};
//!
//! let g = qcirc::generators::ghz(50);
//! let mut buggy = g.clone();
//! buggy.z(17); // a sign error, invisible to measurement statistics in Z basis
//! match check_clifford_equivalence(&g, &buggy, 10, 0)? {
//!     CliffordVerdict::NotEquivalent { witness, .. } => {
//!         println!("distinguishing observable: {witness}");
//!     }
//!     other => panic!("missed: {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod check;
mod convert;
mod random;
mod synth;
mod tableau;

pub use check::{check_clifford_equivalence, inner_product_magnitude, CliffordVerdict};
pub use convert::{apply_gate, is_clifford, run, NotCliffordError};
pub use random::{random_stabilizer_circuit, random_stabilizer_rows};
pub use synth::synthesize_state;
pub use tableau::{PauliRow, Tableau};
