//! The complete equivalence check on a matrix-product operator.
//!
//! Mirrors the decision-diagram alternating check (`G → 𝕀 ← G′`): an
//! intermediary MPO `E` starts at the identity and converges to
//! `U′† · U` as gates of `G` multiply onto the right and inverted gates of
//! `G′` onto the left, with the side-selection delegated to the exact same
//! [`qdd::ApplicationScheme`] policies via [`qdd::SchemeCursor`]. The
//! difference is the resource cap: instead of an exact DD that may blow up
//! (`DdLimitError`), the MPO's bond dimension is truncated at `χ_max` and
//! the discarded weight is *reported*, trading a possible exact answer for
//! a guaranteed bounded-memory one.
//!
//! Closeness to the identity is measured by the normalized trace
//! `t = Tr(E) / (√2ⁿ · ‖E‖_F)` — computed as the Hilbert–Schmidt inner
//! product of the per-site-normalized identity MPO with `E` over `‖E‖` —
//! which by Cauchy–Schwarz satisfies `|t| ≤ 1` with equality iff
//! `E = e^{iφ}·𝕀`, i.e. iff `U′ = e^{iφ}·U`. Truncation widens the
//! acceptance window (`1 − |t|²` is compared against
//! `tolerance + slack · ε`), so artifacts of compression are never
//! convicted as non-equivalence; upstream, a truncated equivalent-class
//! verdict is downgraded to *probably equivalent*.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use qcirc::Circuit;
use qdd::{ApplicationScheme, SchemeCursor};

use crate::mps::{Mps, OperatorSide};

/// Acceptance tolerance on the infidelity `1 − |t|²` of an *exact*
/// (untruncated) run — pure floating-point headroom.
const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Multiplier on the accumulated truncation error added to the acceptance
/// window, so compression artifacts widen the "maybe equivalent" band
/// instead of producing spurious `NotEquivalent` convictions.
const TRUNCATION_SLACK: f64 = 8.0;

/// The equivalence classes of the MPO check, matching
/// [`qdd::DdEquivalence`] shape for uniform handling upstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MpoEquivalence {
    /// `U′ = U` within tolerance.
    Equivalent,
    /// `U′ = e^{iφ}·U` with a non-trivial global phase `φ`.
    EquivalentUpToGlobalPhase {
        /// The global phase `φ` (radians), from the argument of the
        /// normalized trace.
        phase: f64,
    },
    /// The normalized trace magnitude falls short of 1 by more than the
    /// (truncation-widened) tolerance: the circuits differ.
    NotEquivalent,
}

impl MpoEquivalence {
    /// `true` for both exact and up-to-global-phase equivalence.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        !matches!(self, MpoEquivalence::NotEquivalent)
    }
}

/// Why an MPO check gave up before reaching a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpoCheckAbort {
    /// The wall-clock budget expired.
    Timeout {
        /// The budget that was exhausted.
        deadline: Duration,
    },
    /// An external cancellation flag was raised (portfolio racing).
    Cancelled,
}

impl std::fmt::Display for MpoCheckAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpoCheckAbort::Timeout { deadline } => {
                write!(f, "mpo check timed out after {deadline:?}")
            }
            MpoCheckAbort::Cancelled => f.write_str("mpo check cancelled"),
        }
    }
}

impl std::error::Error for MpoCheckAbort {}

/// The outcome of a completed MPO check: the equivalence class plus the
/// compression telemetry that decides how much the class can be trusted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpoVerdict {
    /// The equivalence class under the truncation-widened tolerance.
    pub equivalence: MpoEquivalence,
    /// Accumulated truncation error of the run; `0.0` means the check was
    /// numerically exact and the class is as trustworthy as a DD verdict.
    pub truncation_error: f64,
    /// Peak bond dimension the intermediary MPO reached.
    pub peak_bond: usize,
}

impl MpoVerdict {
    /// `true` for both exact and up-to-global-phase equivalence.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        self.equivalence.is_equivalent()
    }

    /// `true` when no singular values were discarded — the verdict class
    /// is exact, not "probably".
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.truncation_error == 0.0
    }
}

/// Wall-clock + cancellation budget, polled between gate applications.
/// (`qdd`'s deadline helper is crate-private; the semantics match.)
struct Budget<'a> {
    start: Instant,
    limit: Option<Duration>,
    cancel: Option<&'a AtomicBool>,
}

impl Budget<'_> {
    fn check(&self) -> Result<(), MpoCheckAbort> {
        if let Some(cancel) = self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(MpoCheckAbort::Cancelled);
            }
        }
        if let Some(limit) = self.limit {
            if self.start.elapsed() > limit {
                return Err(MpoCheckAbort::Timeout { deadline: limit });
            }
        }
        Ok(())
    }
}

/// Runs the alternating MPO check with the given bond cap and
/// interleaving scheme.
///
/// # Errors
///
/// Returns [`MpoCheckAbort`] on timeout. (Unlike the DD check there is no
/// node-limit failure mode: the bond cap *is* the resource bound, enforced
/// by truncation rather than abortion.)
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ or are zero, or if
/// `chi_max == 0`.
///
/// # Examples
///
/// ```
/// use qdd::ApplicationScheme;
/// use qmpo::check_equivalence_alternating;
///
/// let g = qcirc::generators::qft(4, true);
/// let opt = qcirc::optimize::optimize(&g);
/// let v = check_equivalence_alternating(&g, &opt, 32, None, ApplicationScheme::Proportional)
///     .unwrap();
/// assert!(v.is_equivalent());
/// assert!(v.is_exact());
/// ```
pub fn check_equivalence_alternating(
    g: &Circuit,
    g_prime: &Circuit,
    chi_max: usize,
    deadline: Option<Duration>,
    scheme: ApplicationScheme,
) -> Result<MpoVerdict, MpoCheckAbort> {
    alternating_with_budget(
        g,
        g_prime,
        chi_max,
        Budget {
            start: Instant::now(),
            limit: deadline,
            cancel: None,
        },
        scheme,
    )
}

/// [`check_equivalence_alternating`] with an external cancellation flag,
/// polled between gate applications alongside the deadline — how a
/// concurrent checker portfolio stops a losing racer.
///
/// # Errors
///
/// Returns [`MpoCheckAbort`] on timeout or cancellation.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ or are zero, or if
/// `chi_max == 0`.
pub fn check_equivalence_alternating_cancellable(
    g: &Circuit,
    g_prime: &Circuit,
    chi_max: usize,
    deadline: Option<Duration>,
    cancel: &AtomicBool,
    scheme: ApplicationScheme,
) -> Result<MpoVerdict, MpoCheckAbort> {
    alternating_with_budget(
        g,
        g_prime,
        chi_max,
        Budget {
            start: Instant::now(),
            limit: deadline,
            cancel: Some(cancel),
        },
        scheme,
    )
}

fn alternating_with_budget(
    g: &Circuit,
    g_prime: &Circuit,
    chi_max: usize,
    budget: Budget<'_>,
    scheme: ApplicationScheme,
) -> Result<MpoVerdict, MpoCheckAbort> {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let n = g.n_qubits();
    let mut e = Mps::identity_operator(n);

    // Consume both circuits back-to-front (identical to the DD loop):
    //   from G:  E ← E · U_i      (right multiplication, i = m−1 … 0)
    //   from G': E ← U'†_j · E    (left multiplication, j = m'−1 … 0)
    // yielding E = U'† · U up to the per-site 1/√2 normalization.
    let g_gates = g.gates();
    let gp_gates = g_prime.gates();
    let (m, mp) = (g_gates.len(), gp_gates.len());
    let cursor = SchemeCursor::new(scheme, g_gates, gp_gates);
    let (mut i, mut j) = (0usize, 0usize);
    while !cursor.done(i, j) {
        budget.check()?;
        if cursor.advance_g(i, j) {
            e.apply_operator_gate(&g_gates[m - 1 - i], OperatorSide::Right, chi_max);
            i += 1;
        } else {
            e.apply_operator_gate(&gp_gates[mp - 1 - j].inverse(), OperatorSide::Left, chi_max);
            j += 1;
        }
    }
    Ok(classify(&e))
}

/// The naive "construct both, compare" reference check: builds each
/// circuit's full operator as its own MPO and compares them directly via
/// their Hilbert–Schmidt inner product. Peak bond dimension is that of
/// the *full* unitaries, so this exists as the baseline the alternating
/// scheme is measured against — mirroring `qdd`'s
/// `check_equivalence_construct`.
///
/// # Errors
///
/// Returns [`MpoCheckAbort`] on timeout.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ or are zero, or if
/// `chi_max == 0`.
pub fn check_equivalence_construct(
    g: &Circuit,
    g_prime: &Circuit,
    chi_max: usize,
    deadline: Option<Duration>,
) -> Result<MpoVerdict, MpoCheckAbort> {
    construct_with_budget(
        g,
        g_prime,
        chi_max,
        Budget {
            start: Instant::now(),
            limit: deadline,
            cancel: None,
        },
    )
}

/// [`check_equivalence_construct`] with an external cancellation flag,
/// polled between gate applications alongside the deadline.
///
/// # Errors
///
/// Returns [`MpoCheckAbort`] on timeout or cancellation.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ or are zero, or if
/// `chi_max == 0`.
pub fn check_equivalence_construct_cancellable(
    g: &Circuit,
    g_prime: &Circuit,
    chi_max: usize,
    deadline: Option<Duration>,
    cancel: &AtomicBool,
) -> Result<MpoVerdict, MpoCheckAbort> {
    construct_with_budget(
        g,
        g_prime,
        chi_max,
        Budget {
            start: Instant::now(),
            limit: deadline,
            cancel: Some(cancel),
        },
    )
}

fn construct_with_budget(
    g: &Circuit,
    g_prime: &Circuit,
    chi_max: usize,
    budget: Budget<'_>,
) -> Result<MpoVerdict, MpoCheckAbort> {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let n = g.n_qubits();
    let build = |circuit: &Circuit| -> Result<Mps, MpoCheckAbort> {
        let mut op = Mps::identity_operator(n);
        for gate in circuit.gates().iter().rev() {
            budget.check()?;
            op.apply_operator_gate(gate, OperatorSide::Right, chi_max);
        }
        Ok(op)
    };
    let u = build(g)?;
    let u_prime = build(g_prime)?;
    // t = ⟨U′, U⟩ / (‖U′‖·‖U‖) = Tr(U′† U) / 2ⁿ for exact unitaries.
    let norm = u.norm() * u_prime.norm();
    let t = if norm > 0.0 {
        u_prime.inner_product(&u) / norm
    } else {
        qnum::Complex::ZERO
    };
    let truncation_error = u.truncation_error() + u_prime.truncation_error();
    Ok(verdict_from_trace(
        t,
        truncation_error,
        u.peak_bond().max(u_prime.peak_bond()),
    ))
}

/// Classifies an intermediary MPO `E ≈ U′†·U` by its normalized trace
/// against the identity.
fn classify(e: &Mps) -> MpoVerdict {
    let id = Mps::identity_operator(e.n_sites());
    let norm = e.norm();
    let t = if norm > 0.0 {
        id.inner_product(e) / norm
    } else {
        qnum::Complex::ZERO
    };
    verdict_from_trace(t, e.truncation_error(), e.peak_bond())
}

fn verdict_from_trace(t: qnum::Complex, truncation_error: f64, peak_bond: usize) -> MpoVerdict {
    let window = DEFAULT_TOLERANCE + TRUNCATION_SLACK * truncation_error;
    let infidelity = (1.0 - t.norm_sqr()).max(0.0);
    let equivalence = if infidelity > window {
        MpoEquivalence::NotEquivalent
    } else if (t - qnum::Complex::ONE).norm_sqr() <= window {
        MpoEquivalence::Equivalent
    } else {
        MpoEquivalence::EquivalentUpToGlobalPhase { phase: t.arg() }
    };
    MpoVerdict {
        equivalence,
        truncation_error,
        peak_bond,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    const CHI: usize = 64;

    #[test]
    fn identical_circuits_are_equivalent_and_exact() {
        let g = generators::qft(4, true);
        let v = check_equivalence_alternating(&g, &g, CHI, None, ApplicationScheme::Proportional)
            .unwrap();
        assert_eq!(v.equivalence, MpoEquivalence::Equivalent);
        assert!(v.is_exact());
    }

    #[test]
    fn optimized_pairs_are_equivalent() {
        let g = generators::random_clifford_t(4, 50, 11);
        let opt = qcirc::optimize::optimize(&g);
        let v = check_equivalence_alternating(&g, &opt, CHI, None, ApplicationScheme::Proportional)
            .unwrap();
        assert!(v.is_equivalent());
        assert!(v.is_exact());
    }

    #[test]
    fn single_gate_errors_are_convicted() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(1);
        let v =
            check_equivalence_alternating(&g, &buggy, CHI, None, ApplicationScheme::Proportional)
                .unwrap();
        assert_eq!(v.equivalence, MpoEquivalence::NotEquivalent);
    }

    #[test]
    fn global_phase_is_detected_with_its_angle() {
        // (Z·X)² = −𝕀: a pure global phase of π against the empty circuit.
        let empty = qcirc::Circuit::new(2);
        let mut phased = qcirc::Circuit::new(2);
        phased.x(0).z(0).x(0).z(0);
        let v = check_equivalence_alternating(
            &empty,
            &phased,
            CHI,
            None,
            ApplicationScheme::Proportional,
        )
        .unwrap();
        match v.equivalence {
            MpoEquivalence::EquivalentUpToGlobalPhase { phase } => {
                assert!((phase.abs() - std::f64::consts::PI).abs() < 1e-9, "{phase}");
            }
            other => panic!("expected global phase, got {other:?}"),
        }
    }

    #[test]
    fn all_schemes_agree_with_the_dd_check() {
        for seed in 0..3u64 {
            let g = generators::random_clifford_t(4, 40, seed);
            let opt = qcirc::optimize::optimize(&g);
            let mut buggy = g.clone();
            buggy.t((seed % 4) as usize);
            for (label, a, b) in [("optimized", &g, &opt), ("buggy", &g, &buggy)] {
                let mut p = qdd::Package::new(4);
                let dd = qdd::check_equivalence_alternating(&mut p, a, b, None).unwrap();
                for scheme in ApplicationScheme::ALL {
                    let v = check_equivalence_alternating(a, b, CHI, None, scheme).unwrap();
                    assert!(v.is_exact(), "seed {seed} {label} {scheme}");
                    assert_eq!(
                        v.is_equivalent(),
                        dd.is_equivalent(),
                        "seed {seed} {label} {scheme}"
                    );
                }
            }
        }
    }

    #[test]
    fn construct_agrees_with_alternating() {
        let g = generators::ghz(3);
        let opt = qcirc::optimize::optimize(&g);
        let mut buggy = g.clone();
        buggy.z(1);
        let a = check_equivalence_construct(&g, &opt, CHI, None).unwrap();
        assert!(a.is_equivalent() && a.is_exact());
        let b = check_equivalence_construct(&g, &buggy, CHI, None).unwrap();
        assert_eq!(b.equivalence, MpoEquivalence::NotEquivalent);
    }

    #[test]
    fn truncated_runs_report_their_error() {
        // Identical volume-law circuits at a tiny bond cap: the class
        // stays equivalent (slack window) but the run is not exact.
        let g = generators::supremacy_2d(2, 3, 8, 5);
        let v =
            check_equivalence_alternating(&g, &g, 2, None, ApplicationScheme::Sequential).unwrap();
        assert!(v.truncation_error > 0.0);
        assert!(v.peak_bond <= 2);
    }

    #[test]
    fn cancellation_aborts_promptly() {
        let g = generators::qft(5, true);
        let cancel = AtomicBool::new(true);
        let err = check_equivalence_alternating_cancellable(
            &g,
            &g,
            CHI,
            None,
            &cancel,
            ApplicationScheme::Proportional,
        )
        .unwrap_err();
        assert_eq!(err, MpoCheckAbort::Cancelled);
    }

    #[test]
    fn zero_deadline_times_out() {
        let g = generators::qft(5, true);
        let err = check_equivalence_alternating(
            &g,
            &g,
            CHI,
            Some(Duration::ZERO),
            ApplicationScheme::Proportional,
        )
        .unwrap_err();
        assert!(matches!(err, MpoCheckAbort::Timeout { .. }));
    }
}
