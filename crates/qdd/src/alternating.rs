//! The improved alternating equivalence check (`G → 𝕀 ← G'`, \[22\]).
//!
//! Instead of building both complete system matrices, maintain a single DD
//! `E` that converges to `U'† · U`: gates of `G` are multiplied onto the
//! right (in reverse order), inverted gates of `G'` onto the left (also in
//! reverse order). When the circuits are equivalent and structurally
//! similar — the common case for design-flow outputs — `E` stays close to
//! the identity, keeping the DD exponentially smaller than either full
//! matrix.

use std::time::Duration;

use qcirc::Circuit;

use crate::check::{compare_roots, DdCheckAbort, DdEquivalence, Deadline};
use crate::package::Package;

/// Checks equivalence with the alternating scheme, advancing whichever
/// circuit has proportionally more gates left (the "proportional" strategy
/// of \[22\]).
///
/// # Errors
///
/// Returns [`DdCheckAbort`] on timeout or node-limit exhaustion.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ from the package's.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qdd::DdCheckAbort> {
/// use qdd::{check_equivalence_alternating, DdEquivalence, Package};
///
/// let g = qcirc::generators::qft(4, true);
/// let opt = qcirc::optimize::optimize(&g);
/// let mut p = Package::new(4);
/// let verdict = check_equivalence_alternating(&mut p, &g, &opt, None)?;
/// assert!(verdict.is_equivalent());
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence_alternating(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Option<Duration>,
) -> Result<DdEquivalence, DdCheckAbort> {
    alternating_with_budget(package, g, g_prime, Deadline::new(deadline))
}

/// [`check_equivalence_alternating`] with an external cancellation flag,
/// polled between gate applications alongside the deadline. Raising the
/// flag makes the check return
/// [`DdCheckAbort::Cancelled`](crate::DdCheckAbort::Cancelled) promptly —
/// this is how a concurrent checker portfolio stops a losing racer.
///
/// # Errors
///
/// Returns [`DdCheckAbort`] on timeout, node-limit exhaustion, or
/// cancellation.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ from the package's.
pub fn check_equivalence_alternating_cancellable(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Option<Duration>,
    cancel: &std::sync::atomic::AtomicBool,
) -> Result<DdEquivalence, DdCheckAbort> {
    alternating_with_budget(package, g, g_prime, Deadline::cancellable(deadline, cancel))
}

fn alternating_with_budget(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Deadline<'_>,
) -> Result<DdEquivalence, DdCheckAbort> {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let mut e = package.identity_medge();

    // Consume both circuits back-to-front:
    //   from G:  E ← E · U_i      (right multiplication, i = m−1 … 0)
    //   from G': E ← U'†_j · E    (left multiplication, j = m'−1 … 0)
    // yielding E = U'†_0 ⋯ U'†_{m'−1} · U_{m−1} ⋯ U_0 = U'† · U.
    let g_gates = g.gates();
    let gp_gates = g_prime.gates();
    let (m, mp) = (g_gates.len(), gp_gates.len());
    let (mut i, mut j) = (0usize, 0usize); // consumed counts

    while i < m || j < mp {
        deadline.check()?;
        // Advance the side that is proportionally behind.
        let advance_g = if j >= mp {
            true
        } else if i >= m {
            false
        } else {
            // i/m <= j/m'  ⇔  i·m' <= j·m
            i * mp <= j * m
        };
        if advance_g {
            let gate = &g_gates[m - 1 - i];
            let gd = package.gate_medge(gate)?;
            e = package.mul_mm(e, gd)?;
            i += 1;
        } else {
            let gate = gp_gates[mp - 1 - j].inverse();
            let gd = package.gate_medge(&gate)?;
            e = package.mul_mm(gd, e)?;
            j += 1;
        }
        if package.wants_gc() {
            let (roots, _) = package.compact(&[e], &[]);
            e = roots[0];
        }
    }

    let identity = package.identity_medge();
    Ok(compare_roots(package, e, identity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;
    use qcirc::mapping::{route, CouplingMap, RouterOptions};

    #[test]
    fn identical_circuits_stay_at_identity() {
        let g = generators::qft(5, true);
        let mut p = Package::new(5);
        let v = check_equivalence_alternating(&mut p, &g, &g, None).unwrap();
        assert_eq!(v, DdEquivalence::Equivalent);
    }

    #[test]
    fn agrees_with_construct_on_random_pairs() {
        for seed in 0..4 {
            let g = generators::random_clifford_t(4, 60, seed);
            let optimized = qcirc::optimize::optimize(&g);
            let mut p1 = Package::new(4);
            let a =
                crate::check::check_equivalence_construct(&mut p1, &g, &optimized, None).unwrap();
            let mut p2 = Package::new(4);
            let b = check_equivalence_alternating(&mut p2, &g, &optimized, None).unwrap();
            assert_eq!(a.is_equivalent(), b.is_equivalent(), "seed {seed}");
        }
    }

    #[test]
    fn detects_single_gate_errors() {
        let g = generators::qft(4, true);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let (buggy, _) =
            qcirc::errors::inject(&g, qcirc::errors::ErrorKind::PerturbRotation(0.2), &mut rng)
                .unwrap();
        let mut p = Package::new(4);
        let v = check_equivalence_alternating(&mut p, &g, &buggy, None).unwrap();
        assert_eq!(v, DdEquivalence::NotEquivalent);
    }

    #[test]
    fn mapped_circuits_keep_small_intermediate_dds() {
        let g = generators::qft(6, true);
        let routed = route(&g, &CouplingMap::linear(6), RouterOptions::default()).unwrap();
        let mut p = Package::new(6);
        let v = check_equivalence_alternating(&mut p, &g, &routed.circuit, None).unwrap();
        assert_eq!(v, DdEquivalence::Equivalent);
    }

    #[test]
    fn empty_against_empty() {
        let a = qcirc::Circuit::new(3);
        let b = qcirc::Circuit::new(3);
        let mut p = Package::new(3);
        let v = check_equivalence_alternating(&mut p, &a, &b, None).unwrap();
        assert_eq!(v, DdEquivalence::Equivalent);
    }

    #[test]
    fn unbalanced_gate_counts_are_handled() {
        // G vs its decomposition: very different lengths.
        let mut g = qcirc::Circuit::new(3);
        g.ccx(0, 1, 2).swap(0, 2);
        let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&g);
        assert!(lowered.len() > g.len() * 3);
        let mut p = Package::new(3);
        let v = check_equivalence_alternating(&mut p, &g, &lowered, None).unwrap();
        assert!(v.is_equivalent());
    }
}
