//! The equivalence guard: label mutations that happen to be benign.
//!
//! A syntactic mutation is not always a semantic fault — exchanging the
//! operands of a CZ, dropping a gate that was a no-op, or perturbing an
//! angle by a multiple of `2π` leaves the unitary unchanged. Campaigns
//! that count detection rates must not score such instances as "missed
//! errors", so small instances are re-checked with the complete
//! decision-diagram equivalence check (`qdd`) and labelled.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use qcirc::Circuit;
use qdd::{check_equivalence_alternating, CachedDd, DdEquivalence, Package};

/// Budget for the guard's complete check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardOptions {
    /// Largest register the guard will check completely; bigger instances
    /// are [`GuardVerdict::Unchecked`]. The complete check is exponential
    /// in the worst case, so keep this small (default 14).
    pub max_qubits: usize,
    /// Wall-clock budget per check (default 5 s).
    pub deadline: Option<Duration>,
    /// Decision-diagram node budget per check.
    pub node_limit: usize,
}

impl Default for GuardOptions {
    fn default() -> Self {
        GuardOptions {
            max_qubits: 14,
            deadline: Some(Duration::from_secs(5)),
            node_limit: 1_000_000,
        }
    }
}

/// What the guard concluded about one mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardVerdict {
    /// The mutation genuinely changed the functionality — a real fault.
    Fault,
    /// The mutation left the unitary unchanged (up to global phase when
    /// `phase` is `Some`): the instance must not count against any
    /// checker's detection rate.
    Benign {
        /// `Some(φ)` when the circuits differ by exactly the global phase
        /// `e^{iφ}`, `None` when they are identical.
        phase: Option<f64>,
    },
    /// The guard did not reach a verdict (register too large, or the
    /// complete check exhausted its budget).
    Unchecked {
        /// Why the guard abstained.
        reason: String,
    },
}

impl GuardVerdict {
    /// Returns `true` when the mutation is proven benign.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        matches!(self, GuardVerdict::Benign { .. })
    }

    /// Returns `true` when the mutation is proven to be a real fault.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(self, GuardVerdict::Fault)
    }
}

impl fmt::Display for GuardVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardVerdict::Fault => write!(f, "fault"),
            GuardVerdict::Benign { phase: None } => write!(f, "benign"),
            GuardVerdict::Benign { phase: Some(p) } => {
                write!(f, "benign (global phase {p:.4})")
            }
            GuardVerdict::Unchecked { reason } => write!(f, "unchecked ({reason})"),
        }
    }
}

/// Classifies a mutation by completely checking `mutated` against
/// `original` with the DD-based routine, within the [`GuardOptions`]
/// budget.
///
/// # Panics
///
/// Panics if the circuits act on different register sizes (mutators
/// always preserve the register).
#[must_use]
pub fn classify(original: &Circuit, mutated: &Circuit, opts: &GuardOptions) -> GuardVerdict {
    assert_eq!(
        original.n_qubits(),
        mutated.n_qubits(),
        "guard inputs must share a register"
    );
    let n = original.n_qubits();
    if n > opts.max_qubits {
        return GuardVerdict::Unchecked {
            reason: format!("{n} qubits exceed the guard limit of {}", opts.max_qubits),
        };
    }
    let mut package = Package::with_node_limit(n, opts.node_limit);
    verdict_from(check_equivalence_alternating(
        &mut package,
        original,
        mutated,
        opts.deadline,
    ))
}

fn verdict_from(result: Result<DdEquivalence, qdd::DdCheckAbort>) -> GuardVerdict {
    match result {
        Ok(DdEquivalence::NotEquivalent) => GuardVerdict::Fault,
        Ok(DdEquivalence::Equivalent) => GuardVerdict::Benign { phase: None },
        Ok(DdEquivalence::EquivalentUpToGlobalPhase { phase }) => {
            GuardVerdict::Benign { phase: Some(phase) }
        }
        Err(abort) => GuardVerdict::Unchecked {
            reason: abort.to_string(),
        },
    }
}

/// A per-benchmark guard with the golden circuit memoized — its gate list
/// for diffing and its decision diagram for whole-circuit comparisons —
/// so a campaign pays golden-side work once per benchmark instead of once
/// per trial.
///
/// Each [`GuardCache::classify`] call first *trims*: the gates a candidate
/// shares with the golden circuit (common prefix and suffix of the gate
/// lists) are stripped, and only the differing middles are checked. This
/// is exact, not a heuristic: with shared prefix `P` and suffix `A` (as
/// unitaries), `U_candidate · U_golden† = A · (M_c · M_g†) · A†`, and
/// conjugation by a unitary preserves both the identity and its global
/// phase — so the middle pair has exactly the verdict of the full pair.
/// A campaign mutant differs from its golden circuit in a handful of
/// gates, so the complete check shrinks from the whole circuit to a few
/// gates; even a suffix-wide mutation (qubit relabelling) never checks
/// more than the stateless guard would.
///
/// Candidates that share *nothing* with the golden circuit get no help
/// from trimming, and the alternating scheme loses its advantage too (the
/// working DD no longer stays near the identity). For those the cache
/// falls back to construct-and-compare against the memoized golden root:
/// a pool of [`CachedDd`] handles, seeded with one handle built in
/// [`GuardCache::new`], popped per check and grown only when more callers
/// run concurrently than handles exist.
///
/// Verdicts agree with the stateless [`classify`]: both reduce to the same
/// canonical-DD comparison, which is order- and history-independent.
///
/// # Examples
///
/// ```
/// use qfault::{guard::GuardCache, GuardOptions};
///
/// let golden = qcirc::generators::ghz(4);
/// let cache = GuardCache::new(&golden, &GuardOptions::default());
/// let mut buggy = golden.clone();
/// buggy.x(2);
/// assert!(cache.classify(&buggy).is_fault());
/// assert!(cache.classify(&golden.clone()).is_benign());
/// assert_eq!(cache.golden_builds(), 1); // built once, at construction
/// ```
#[derive(Debug)]
pub struct GuardCache {
    golden: Circuit,
    opts: GuardOptions,
    pool: Mutex<Vec<CachedDd>>,
    builds: AtomicUsize,
    checks: AtomicUsize,
}

impl GuardCache {
    /// Creates a cache for one golden circuit and builds its DD once,
    /// eagerly, so every later [`GuardCache::classify`] call finds it
    /// ready. Oversized registers (beyond [`GuardOptions::max_qubits`])
    /// never pay for a build; a build that exhausts its budget is dropped
    /// and retried on demand by the fallback path.
    #[must_use]
    pub fn new(golden: &Circuit, opts: &GuardOptions) -> Self {
        let cache = GuardCache {
            golden: golden.clone(),
            opts: *opts,
            pool: Mutex::new(Vec::new()),
            builds: AtomicUsize::new(0),
            checks: AtomicUsize::new(0),
        };
        if cache.golden.n_qubits() <= opts.max_qubits {
            if let Ok(handle) = CachedDd::build(&cache.golden, opts.node_limit, opts.deadline) {
                cache.builds.fetch_add(1, Ordering::Relaxed);
                cache.pool.lock().expect("guard pool poisoned").push(handle);
            }
        }
        cache
    }

    /// The golden circuit this cache guards.
    #[must_use]
    pub fn golden(&self) -> &Circuit {
        &self.golden
    }

    /// How many times the golden DD was actually constructed — 1 for a
    /// sequential campaign, at most the number of concurrent callers
    /// otherwise (versus one build per trial without the cache).
    #[must_use]
    pub fn golden_builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// How many mutants this cache has classified.
    #[must_use]
    pub fn mutants_checked(&self) -> usize {
        self.checks.load(Ordering::Relaxed)
    }

    /// Classifies one mutant against the memoized golden circuit, within
    /// the [`GuardOptions`] budget. Equivalent to
    /// `classify(golden, mutated, opts)` but without redoing golden-side
    /// work per call: shared gates are trimmed away first and only the
    /// differing middles are checked (see the type-level docs for why
    /// this preserves the verdict exactly).
    ///
    /// # Panics
    ///
    /// Panics if `mutated` acts on a different register than the golden
    /// circuit (mutators always preserve the register), or if a previous
    /// caller panicked while holding a cache handle.
    #[must_use]
    pub fn classify(&self, mutated: &Circuit) -> GuardVerdict {
        assert_eq!(
            self.golden.n_qubits(),
            mutated.n_qubits(),
            "guard inputs must share a register"
        );
        self.checks.fetch_add(1, Ordering::Relaxed);
        let n = self.golden.n_qubits();
        if n > self.opts.max_qubits {
            return GuardVerdict::Unchecked {
                reason: format!(
                    "{n} qubits exceed the guard limit of {}",
                    self.opts.max_qubits
                ),
            };
        }
        let (shared, mid_golden, mid_mutated) = trimmed(&self.golden, mutated);
        if shared > 0 || self.golden.len().max(mutated.len()) == 0 {
            // The candidate overlaps the golden circuit: check only the
            // differing middles, alternating so the working DD stays near
            // the identity. Never more work than the stateless guard, and
            // for a local mutation it is a few gates instead of the whole
            // circuit.
            let mut package = Package::with_node_limit(n, self.opts.node_limit);
            return verdict_from(check_equivalence_alternating(
                &mut package,
                &mid_golden,
                &mid_mutated,
                self.opts.deadline,
            ));
        }
        // No overlap at all: trimming and alternating both lose their
        // leverage, so construct-and-compare against the memoized golden
        // root, which at least halves the per-check construction work.
        let idle = self.pool.lock().expect("guard pool poisoned").pop();
        let mut handle = match idle {
            Some(handle) => handle,
            None => {
                self.builds.fetch_add(1, Ordering::Relaxed);
                match CachedDd::build(&self.golden, self.opts.node_limit, self.opts.deadline) {
                    Ok(handle) => handle,
                    Err(abort) => {
                        return GuardVerdict::Unchecked {
                            reason: abort.to_string(),
                        }
                    }
                }
            }
        };
        let verdict = verdict_from(handle.check(mutated, self.opts.deadline));
        self.pool.lock().expect("guard pool poisoned").push(handle);
        verdict
    }
}

/// Strips the gates shared by both circuits (longest common prefix, then
/// longest common suffix of what remains) and returns
/// `(shared_gate_count, golden_middle, other_middle)`, the middles as
/// circuits on the full register.
///
/// Checking the middles is exact: writing the shared prefix and suffix as
/// unitaries `P` and `A`, `U_other · U_golden† = A · (M_o · M_g†) · A†`,
/// and `A X A† = e^{iφ} 𝕀` if and only if `X = e^{iφ} 𝕀` with the same
/// `φ` — so equivalence, inequivalence, and the global phase all carry
/// over from the middle pair to the full pair.
fn trimmed(golden: &Circuit, other: &Circuit) -> (usize, Circuit, Circuit) {
    let g = golden.gates();
    let o = other.gates();
    let limit = g.len().min(o.len());
    let mut prefix = 0;
    while prefix < limit && g[prefix] == o[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < limit - prefix && g[g.len() - 1 - suffix] == o[o.len() - 1 - suffix] {
        suffix += 1;
    }
    let mut mid_golden = Circuit::new(golden.n_qubits());
    for gate in &g[prefix..g.len() - suffix] {
        mid_golden.push(gate.clone());
    }
    let mut mid_other = Circuit::new(other.n_qubits());
    for gate in &o[prefix..o.len() - suffix] {
        mid_other.push(gate.clone());
    }
    (prefix + suffix, mid_golden, mid_other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn real_faults_are_flagged() {
        let c = generators::ghz(4);
        let mut buggy = c.clone();
        buggy.x(2);
        assert_eq!(
            classify(&c, &buggy, &GuardOptions::default()),
            GuardVerdict::Fault
        );
    }

    #[test]
    fn identical_circuits_are_benign() {
        let c = generators::qft(4, true);
        let v = classify(&c, &c.clone(), &GuardOptions::default());
        assert!(v.is_benign());
        assert!(!v.is_fault());
    }

    #[test]
    fn symmetric_operand_swap_is_benign() {
        // CZ is symmetric: exchanging control and target is a syntactic
        // change with no semantic effect — exactly what the guard catches.
        let mut a = qcirc::Circuit::new(2);
        a.h(0).cz(0, 1);
        let mut b = qcirc::Circuit::new(2);
        b.h(0).cz(1, 0);
        assert!(classify(&a, &b, &GuardOptions::default()).is_benign());
    }

    #[test]
    fn oversized_registers_are_unchecked() {
        let c = generators::ghz(6);
        let opts = GuardOptions {
            max_qubits: 4,
            ..GuardOptions::default()
        };
        match classify(&c, &c.clone(), &opts) {
            GuardVerdict::Unchecked { reason } => assert!(reason.contains("guard limit")),
            other => panic!("expected unchecked, got {other:?}"),
        }
    }

    #[test]
    fn cache_matches_stateless_classify() {
        let golden = generators::qft(4, true);
        let cache = GuardCache::new(&golden, &GuardOptions::default());
        let mutants = [
            golden.clone(),
            {
                let mut b = golden.clone();
                b.x(0);
                b
            },
            {
                let mut b = golden.clone();
                b.rz(2.0 * std::f64::consts::PI, 1);
                b
            },
        ];
        for mutant in &mutants {
            let cached = cache.classify(mutant);
            let stateless = classify(&golden, mutant, &GuardOptions::default());
            assert_eq!(
                cached.is_fault(),
                stateless.is_fault(),
                "fault labels disagree"
            );
            assert_eq!(
                cached.is_benign(),
                stateless.is_benign(),
                "benign labels disagree"
            );
        }
        assert_eq!(cache.golden_builds(), 1, "golden DD built more than once");
        assert_eq!(cache.mutants_checked(), mutants.len());
    }

    #[test]
    fn cache_respects_the_qubit_limit_without_building() {
        let golden = generators::ghz(6);
        let opts = GuardOptions {
            max_qubits: 4,
            ..GuardOptions::default()
        };
        let cache = GuardCache::new(&golden, &opts);
        match cache.classify(&golden.clone()) {
            GuardVerdict::Unchecked { reason } => assert!(reason.contains("guard limit")),
            other => panic!("expected unchecked, got {other:?}"),
        }
        assert_eq!(cache.golden_builds(), 0, "oversized register paid a build");
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let golden = generators::ghz(5);
        let cache = GuardCache::new(&golden, &GuardOptions::default());
        let mut buggy = golden.clone();
        buggy.z(3);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        assert!(cache.classify(&buggy).is_fault());
                        assert!(cache.classify(&golden.clone()).is_benign());
                    }
                });
            }
        });
        assert_eq!(cache.mutants_checked(), 40);
        // At most one build per concurrent worker, never one per check.
        assert!(
            (1..=4).contains(&cache.golden_builds()),
            "{} builds for 4 workers",
            cache.golden_builds()
        );
    }

    #[test]
    fn trimming_strips_shared_prefix_and_suffix() {
        let mut golden = qcirc::Circuit::new(3);
        golden.h(0).cx(0, 1).t(2).cx(1, 2);
        // Drop the third gate: shared prefix [h, cx], shared suffix [cx].
        let mut dropped = golden.clone();
        dropped.remove(2);
        let (shared, mid_g, mid_m) = trimmed(&golden, &dropped);
        assert_eq!(shared, 3);
        assert_eq!(mid_g.len(), 1);
        assert_eq!(mid_m.len(), 0);
        // Identical circuits trim to nothing.
        let (shared, mid_g, mid_m) = trimmed(&golden, &golden.clone());
        assert_eq!(shared, golden.len());
        assert_eq!(mid_g.len(), 0);
        assert_eq!(mid_m.len(), 0);
        // The suffix never overlaps the prefix: a duplicated gate is
        // attributed once, not twice.
        let mut doubled = golden.clone();
        doubled.h(0);
        let (shared, mid_g, mid_m) = trimmed(&golden, &doubled);
        assert_eq!(shared, golden.len());
        assert_eq!(mid_g.len(), 0);
        assert_eq!(mid_m.len(), 1);
    }

    #[test]
    fn suffix_wide_mutations_match_the_stateless_guard() {
        // A qubit relabelling rewrites every gate from some index on — the
        // widest middle any mutator produces. Labels must still match.
        let golden = generators::qft(4, true);
        let cache = GuardCache::new(&golden, &GuardOptions::default());
        let relabel = crate::mutator_for(crate::MutationKind::RelabelQubits, 0.1);
        for seed in 0..6u64 {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let Ok((mutated, record)) = relabel.apply(&golden, &mut rng) else {
                continue;
            };
            assert_eq!(
                cache.classify(&mutated),
                classify(&golden, &mutated, &GuardOptions::default()),
                "labels diverged on {record}"
            );
        }
    }

    #[test]
    fn disjoint_candidates_fall_back_to_the_memoized_dd() {
        // A candidate sharing no gate with the golden circuit skips the
        // trim fast path; the memoized-DD fallback must still label it
        // exactly like the stateless guard — here benign, because
        // H·Z·H = X even though the gate lists are disjoint.
        let mut golden = qcirc::Circuit::new(2);
        golden.x(0).cx(0, 1).x(0);
        let mut detour = qcirc::Circuit::new(2);
        detour.h(0).z(0).h(0).cx(0, 1).h(0).z(0).h(0);
        let cache = GuardCache::new(&golden, &GuardOptions::default());
        let (shared, _, _) = trimmed(&golden, &detour);
        assert_eq!(shared, 0, "the detour must not share prefix or suffix");
        let verdict = cache.classify(&detour);
        assert_eq!(
            verdict,
            classify(&golden, &detour, &GuardOptions::default())
        );
        assert!(verdict.is_benign());
        // The fallback reused the eagerly built handle.
        assert_eq!(cache.golden_builds(), 1);
    }

    #[test]
    fn verdicts_display() {
        assert_eq!(GuardVerdict::Fault.to_string(), "fault");
        assert_eq!(GuardVerdict::Benign { phase: None }.to_string(), "benign");
        assert!(GuardVerdict::Benign { phase: Some(0.5) }
            .to_string()
            .contains("global phase"));
    }
}
