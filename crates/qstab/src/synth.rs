//! Stabilizer-state preparation synthesis: from `n` stabilizer generators
//! to a Clifford circuit preparing the state from `|0…0⟩`.
//!
//! The synthesis runs the textbook disentangling sweep *backwards*: it
//! records the gate sequence that maps the given state to `|0…0⟩` by
//! conjugating the generators qubit by qubit until they read `+Z₀ … +Z_{n−1}`,
//! then returns the inverse circuit. Per qubit `q` it
//!
//! 1. ensures some unprocessed generator has an X-bit at `q` (applying `H(q)`
//!    if necessary — one must then exist, or `Z_q` would extend the maximal
//!    abelian group, impossible for a pure state);
//! 2. multiplies the other X-carrying generators by that pivot, making it
//!    the only one touching column `q` with X;
//! 3. reduces the pivot to `±X_q` with `CX`/`S`/`CZ` conjugations, fixes the
//!    sign with `Z(q)`, and finishes with `H(q)`, leaving the pivot `+Z_q`.
//!
//! Mutual commutation forces every other generator off column `q` at that
//! point, so processed columns are never revisited and the sweep terminates
//! with the `|0…0⟩` tableau in `O(n²)` gates.

use qcirc::Circuit;

use crate::tableau::PauliRow;

/// Synthesizes a Clifford preparation circuit for the pure stabilizer state
/// described by `rows`: the returned circuit `P` satisfies
/// `P|0…0⟩ = |ψ⟩` with every row stabilizing `|ψ⟩` (verify with
/// [`crate::run`]` + `[`crate::Tableau::stabilizes`]).
///
/// Uses only `H`, `S`/`S†`, `Z`, `CX` and `CZ`, at most `O(n²)` of them.
///
/// # Panics
///
/// Panics if `rows` is not a valid description of a pure stabilizer state
/// on `rows.len()` qubits: wrong row lengths, imaginary phases, mutually
/// anticommuting or dependent rows.
#[must_use]
pub fn synthesize_state(rows: &[PauliRow]) -> Circuit {
    let n = rows.len();
    assert!(n > 0, "a stabilizer state needs at least one generator");
    for row in rows {
        assert_eq!(row.x.len(), n, "row width must match the generator count");
        assert_eq!(row.z.len(), n, "row width must match the generator count");
        assert!(!row.imaginary, "stabilizer generators carry real signs");
    }

    let mut rows: Vec<PauliRow> = rows.to_vec();
    let mut processed = vec![false; n];
    // The disentangler: applied to |ψ⟩ it yields |0…0⟩.
    let mut dis = Circuit::new(n);

    for q in 0..n {
        // 1. Guarantee an X-bit at column q among the unprocessed rows.
        if find_pivot(&rows, &processed, q).is_none() {
            dis.h(q);
            conj_h(&mut rows, q);
        }
        let j = find_pivot(&rows, &processed, q).expect(
            "no generator anticommutes with Z_q even after H — \
             the rows do not describe a pure stabilizer state",
        );

        // 2. Make row j the only unprocessed row with an X-bit at q.
        let pivot = rows[j].clone();
        for (i, row) in rows.iter_mut().enumerate() {
            if i != j && !processed[i] && row.x[q] {
                row.mul_assign(&pivot);
                assert!(!row.imaginary, "generators must pairwise commute");
            }
        }

        // 3a. Clear the pivot's X-bits on every other column.
        for c in 0..n {
            if c != q && rows[j].x[c] {
                dis.cx(q, c);
                conj_cx(&mut rows, q, c);
            }
        }
        // 3b. Y at q → X at q.
        if rows[j].z[q] {
            dis.s(q);
            conj_s(&mut rows, q);
        }
        // 3c. Clear the pivot's Z-bits on every other column.
        for c in 0..n {
            if c != q && rows[j].z[c] {
                dis.cz(q, c);
                conj_cz(&mut rows, q, c);
            }
        }
        // 3d. Fix the sign: −X_q → +X_q.
        if rows[j].sign {
            dis.z(q);
            conj_z(&mut rows, q);
        }
        // 3e. +X_q → +Z_q.
        dis.h(q);
        conj_h(&mut rows, q);

        debug_assert!(is_plus_z(&rows[j], q), "pivot must reduce to +Z_q");
        processed[j] = true;
    }

    // Every generator is now +Z_q for a distinct q, i.e. the disentangled
    // state is |0…0⟩; the preparation circuit is the inverse sweep.
    dis.inverse()
}

fn find_pivot(rows: &[PauliRow], processed: &[bool], q: usize) -> Option<usize> {
    rows.iter()
        .enumerate()
        .position(|(i, row)| !processed[i] && row.x[q])
}

fn is_plus_z(row: &PauliRow, q: usize) -> bool {
    !row.sign
        && !row.imaginary
        && row.x.iter().all(|&b| !b)
        && row.z.iter().enumerate().all(|(c, &b)| b == (c == q))
}

// Conjugation updates `P ↦ U P U†` for each recorded gate, applied to every
// generator — the same Aaronson–Gottesman update rules as `Tableau`'s gates.

fn conj_h(rows: &mut [PauliRow], q: usize) {
    for row in rows {
        row.sign ^= row.x[q] & row.z[q];
        std::mem::swap(&mut row.x[q], &mut row.z[q]);
    }
}

fn conj_s(rows: &mut [PauliRow], q: usize) {
    for row in rows {
        row.sign ^= row.x[q] & row.z[q];
        row.z[q] ^= row.x[q];
    }
}

fn conj_cx(rows: &mut [PauliRow], c: usize, t: usize) {
    for row in rows {
        row.sign ^= row.x[c] & row.z[t] & (row.x[t] ^ row.z[c] ^ true);
        row.x[t] ^= row.x[c];
        row.z[c] ^= row.z[t];
    }
}

fn conj_cz(rows: &mut [PauliRow], a: usize, b: usize) {
    // CZ = H(b) · CX(a,b) · H(b).
    conj_h(rows, b);
    conj_cx(rows, a, b);
    conj_h(rows, b);
}

fn conj_z(rows: &mut [PauliRow], q: usize) {
    for row in rows {
        row.sign ^= row.x[q];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_stabilizer_rows;
    use crate::Tableau;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ghz_rows(n: usize) -> Vec<PauliRow> {
        // X…X and Z_i Z_{i+1} stabilize the GHZ state.
        let mut rows = Vec::new();
        let mut all_x = PauliRow::identity(n);
        all_x.x.iter_mut().for_each(|b| *b = true);
        rows.push(all_x);
        for i in 0..n - 1 {
            let mut zz = PauliRow::identity(n);
            zz.z[i] = true;
            zz.z[i + 1] = true;
            rows.push(zz);
        }
        rows
    }

    #[test]
    fn ghz_rows_synthesize_the_ghz_state() {
        for n in 2..=5 {
            let circuit = synthesize_state(&ghz_rows(n));
            let tableau = crate::run(&circuit, 0).expect("synthesis emits Clifford gates only");
            let mut reference = Tableau::new(n);
            reference.h(0);
            for q in 1..n {
                reference.cx(0, q);
            }
            assert!(tableau.same_state(&reference), "n = {n}");
        }
    }

    #[test]
    fn basis_states_synthesize_trivially() {
        // +Z_q rows with signs encoding |101⟩.
        let n = 3;
        let mut rows = Vec::new();
        for (q, bit) in [true, false, true].into_iter().enumerate() {
            let mut row = PauliRow::identity(n);
            row.z[q] = true;
            row.sign = bit;
            rows.push(row);
        }
        let circuit = synthesize_state(&rows);
        let tableau = crate::run(&circuit, 0).unwrap();
        assert!(tableau.same_state(&Tableau::basis(n, 0b101)));
    }

    #[test]
    fn random_states_round_trip() {
        for n in 1..=7 {
            for seed in 0..6u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let rows = random_stabilizer_rows(n, &mut rng);
                let circuit = synthesize_state(&rows);
                let tableau = crate::run(&circuit, 0).expect("synthesis emits Clifford gates only");
                for row in &rows {
                    assert!(
                        tableau.stabilizes(row),
                        "n={n} seed={seed}: {row} does not stabilize the prepared state"
                    );
                }
            }
        }
    }

    #[test]
    fn gate_count_is_quadratic() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [4usize, 8, 12] {
            let rows = random_stabilizer_rows(n, &mut rng);
            let circuit = synthesize_state(&rows);
            assert!(
                circuit.len() <= 3 * n * n + 4 * n,
                "n={n}: {} gates exceeds the O(n²) bound",
                circuit.len()
            );
        }
    }
}
