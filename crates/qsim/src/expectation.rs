//! Pauli-string expectation values `⟨ψ|P|ψ⟩`.
//!
//! Used by the chemistry example workloads (energy estimates) and as an
//! independent probe in tests: two equivalent circuits must produce equal
//! expectation values for every observable.

use std::fmt;
use std::str::FromStr;

use qnum::Complex;

use crate::state::StateVector;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A tensor product of Pauli operators, e.g. `ZZIIX`.
///
/// # Examples
///
/// ```
/// use qsim::expectation::PauliString;
///
/// let p: PauliString = "ZZI".parse()?;
/// assert_eq!(p.n_qubits(), 3);
/// # Ok::<(), qsim::expectation::ParsePauliError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    /// `paulis[q]` acts on qubit `q` (index 0 = least significant; note the
    /// *string* is written most-significant first, like ket labels).
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// Creates a Pauli string from per-qubit operators (`ops[q]` acts on
    /// qubit `q`).
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    #[must_use]
    pub fn new(ops: Vec<Pauli>) -> Self {
        assert!(!ops.is_empty(), "a Pauli string needs at least one factor");
        PauliString { paulis: ops }
    }

    /// The number of qubits the string acts on.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// The operator acting on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn factor(&self, q: usize) -> Pauli {
        self.paulis[q]
    }

    /// The expectation value `⟨ψ|P|ψ⟩` (always real for Hermitian `P`).
    ///
    /// # Panics
    ///
    /// Panics if the string and state qubit counts differ.
    #[must_use]
    pub fn expectation(&self, state: &StateVector) -> f64 {
        assert_eq!(
            self.n_qubits(),
            state.n_qubits(),
            "Pauli string and state qubit counts differ"
        );
        // ⟨ψ|P|ψ⟩ = Σ_i conj(ψ_i)·(Pψ)_i, computed without materializing Pψ:
        // P maps |i⟩ to phase(i)·|i ⊕ flip_mask⟩.
        let mut flip_mask = 0usize;
        for (q, p) in self.paulis.iter().enumerate() {
            if matches!(p, Pauli::X | Pauli::Y) {
                flip_mask |= 1 << q;
            }
        }
        let amps = state.amplitudes();
        let mut acc = Complex::ZERO;
        for (i, amp) in amps.iter().enumerate() {
            if amp.approx_zero() {
                continue;
            }
            let j = i ^ flip_mask;
            // phase of ⟨i|P|j⟩ where j = i ^ flip_mask.
            let mut phase = Complex::ONE;
            for (q, p) in self.paulis.iter().enumerate() {
                let bit_j = (j >> q) & 1;
                match p {
                    Pauli::I | Pauli::X => {}
                    // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
                    Pauli::Y => phase *= if bit_j == 0 { Complex::I } else { -Complex::I },
                    // Z|b⟩ = (−1)^b |b⟩.
                    Pauli::Z => {
                        if bit_j == 1 {
                            phase = -phase;
                        }
                    }
                }
            }
            acc += amp.conj() * phase * amps[j];
        }
        debug_assert!(acc.im.abs() < 1e-9, "Hermitian expectation must be real");
        acc.re
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Most significant qubit first, like ket labels.
        for p in self.paulis.iter().rev() {
            let c = match p {
                Pauli::I => 'I',
                Pauli::X => 'X',
                Pauli::Y => 'Y',
                Pauli::Z => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Error parsing a Pauli string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliError {
    /// The offending character.
    pub found: char,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid Pauli character '{}' (expected I, X, Y or Z)",
            self.found
        )
    }
}

impl std::error::Error for ParsePauliError {}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    /// Parses e.g. `"ZZIX"`, written most-significant qubit first.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParsePauliError { found: ' ' });
        }
        let mut paulis = Vec::with_capacity(s.len());
        for c in s.chars().rev() {
            paulis.push(match c.to_ascii_uppercase() {
                'I' => Pauli::I,
                'X' => Pauli::X,
                'Y' => Pauli::Y,
                'Z' => Pauli::Z,
                other => return Err(ParsePauliError { found: other }),
            });
        }
        Ok(PauliString { paulis })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use qcirc::generators;

    #[test]
    fn parsing_and_display_roundtrip() {
        let p: PauliString = "ZIXY".parse().unwrap();
        assert_eq!(p.n_qubits(), 4);
        assert_eq!(p.to_string(), "ZIXY");
        assert_eq!(p.factor(0), Pauli::Y); // least significant = rightmost
        assert_eq!(p.factor(3), Pauli::Z);
        assert!("ZQ".parse::<PauliString>().is_err());
        assert!("".parse::<PauliString>().is_err());
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let s = StateVector::basis(2, 0b01);
        let zi: PauliString = "ZI".parse().unwrap();
        let iz: PauliString = "IZ".parse().unwrap();
        assert!((zi.expectation(&s) - 1.0).abs() < 1e-12); // qubit 1 is 0
        assert!((iz.expectation(&s) + 1.0).abs() < 1e-12); // qubit 0 is 1
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut c = qcirc::Circuit::new(1);
        c.h(0);
        let s = Simulator::new().run_basis(&c, 0);
        let x: PauliString = "X".parse().unwrap();
        let z: PauliString = "Z".parse().unwrap();
        assert!((x.expectation(&s) - 1.0).abs() < 1e-12);
        assert!(z.expectation(&s).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_on_circular_state() {
        // S·H|0⟩ = (|0⟩ + i|1⟩)/√2, the +1 eigenstate of Y.
        let mut c = qcirc::Circuit::new(1);
        c.h(0).s(0);
        let s = Simulator::new().run_basis(&c, 0);
        let y: PauliString = "Y".parse().unwrap();
        assert!((y.expectation(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_correlations() {
        let s = Simulator::new().run_basis(&generators::ghz(3), 0);
        let zz: PauliString = "IZZ".parse().unwrap();
        let xxx: PauliString = "XXX".parse().unwrap();
        let z_single: PauliString = "IIZ".parse().unwrap();
        assert!((zz.expectation(&s) - 1.0).abs() < 1e-12, "ZZ correlation");
        assert!((xxx.expectation(&s) - 1.0).abs() < 1e-12, "GHZ X parity");
        assert!(z_single.expectation(&s).abs() < 1e-12, "single Z vanishes");
    }

    #[test]
    fn equivalent_circuits_share_expectations() {
        let g = generators::trotter_heisenberg(2, 2, 1, 0.2, 0.3);
        let o = qcirc::optimize::optimize(&g);
        let sim = Simulator::new();
        let a = sim.run_basis(&g, 3);
        let b = sim.run_basis(&o, 3);
        for obs in ["ZZII", "XIXI", "YYII", "IZIZ"] {
            let p: PauliString = obs.parse().unwrap();
            assert!(
                (p.expectation(&a) - p.expectation(&b)).abs() < 1e-9,
                "{obs}"
            );
        }
    }
}
