//! Dense quantum state vectors.

use std::fmt;

use qnum::{approx, Complex};

/// A dense `2ⁿ`-amplitude state vector.
///
/// Qubit `q` corresponds to bit `q` of the amplitude index (qubit 0 is the
/// least significant bit), matching the convention of `qcirc`.
///
/// # Examples
///
/// ```
/// use qsim::StateVector;
///
/// let s = StateVector::basis(2, 0b10);
/// assert_eq!(s.probability(0b10), 1.0);
/// assert!(s.is_normalized());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The hard cap on qubits for dense simulation (2²⁸ amplitudes = 4 GiB).
    pub const MAX_QUBITS: usize = 28;

    /// Creates the all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero or exceeds [`StateVector::MAX_QUBITS`].
    #[must_use]
    pub fn zero(n_qubits: usize) -> Self {
        StateVector::basis(n_qubits, 0)
    }

    /// Creates the computational basis state `|i⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero, exceeds [`StateVector::MAX_QUBITS`], or
    /// `basis >= 2ⁿ`.
    #[must_use]
    pub fn basis(n_qubits: usize, basis: u64) -> Self {
        assert!(n_qubits > 0, "a state needs at least one qubit");
        assert!(
            n_qubits <= Self::MAX_QUBITS,
            "dense statevectors support at most {} qubits",
            Self::MAX_QUBITS
        );
        let dim = 1usize << n_qubits;
        assert!(
            (basis as usize) < dim,
            "basis state {basis} out of range for {n_qubits} qubits"
        );
        let mut amps = vec![Complex::ZERO; dim];
        amps[basis as usize] = Complex::ONE;
        StateVector { n_qubits, amps }
    }

    /// Resets this state to the computational basis state `|i⟩` without
    /// reallocating, so hot loops (e.g. the equivalence-checking
    /// simulation stage) can reuse one buffer across runs.
    ///
    /// # Panics
    ///
    /// Panics if `basis >= 2ⁿ`.
    pub fn reset_to_basis(&mut self, basis: u64) {
        assert!(
            (basis as usize) < self.amps.len(),
            "basis state {basis} out of range for {} qubits",
            self.n_qubits
        );
        self.amps.fill(Complex::ZERO);
        self.amps[basis as usize] = Complex::ONE;
    }

    /// Copies `other`'s amplitudes into this state without reallocating —
    /// the buffer-reuse companion of [`StateVector::reset_to_basis`] for
    /// probes that branch two circuits off one shared prepared state.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn copy_from(&mut self, other: &StateVector) {
        assert_eq!(self.n_qubits, other.n_qubits, "state qubit counts differ");
        self.amps.copy_from_slice(&other.amps);
    }

    /// Creates a state from raw amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] if the length is not a power of two ≥ 2 or the
    /// vector is not normalized within the workspace tolerance.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Result<Self, StateError> {
        let dim = amps.len();
        if dim < 2 || !dim.is_power_of_two() {
            return Err(StateError::BadDimension { dim });
        }
        let n_qubits = dim.trailing_zeros() as usize;
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if !approx::approx_eq_with(norm_sqr, 1.0, 1e-8) {
            return Err(StateError::NotNormalized { norm_sqr });
        }
        Ok(StateVector { n_qubits, amps })
    }

    /// The number of qubits.
    #[inline]
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The dimension `2ⁿ`.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// The amplitudes, indexed by basis state.
    #[inline]
    #[must_use]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Mutable access to the amplitudes (used by gate kernels).
    #[inline]
    #[must_use]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex] {
        &mut self.amps
    }

    /// The amplitude of basis state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn amplitude(&self, i: u64) -> Complex {
        self.amps[i as usize]
    }

    /// The measurement probability of basis state `i`, `|αᵢ|²`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn probability(&self, i: u64) -> f64 {
        self.amps[i as usize].norm_sqr()
    }

    /// The squared norm `Σ|αᵢ|²` (1 for a valid state).
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Returns `true` if the squared norm is within `1e-8` of one.
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        approx::approx_eq_with(self.norm_sqr(), 1.0, 1e-8)
    }

    /// Rescales to unit norm (useful after accumulated rounding).
    pub fn renormalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        if norm > 0.0 {
            for a in &mut self.amps {
                *a = *a / norm;
            }
        }
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// This is exactly the quantity of the paper's Section IV-A: simulating
    /// `G` and `G'` on `|i⟩` and taking `⟨uᵢ|uᵢ′⟩`; any value ≠ 1 proves
    /// non-equivalence.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// The fidelity `|⟨self|other⟩|²` — phase-insensitive overlap in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Entry-wise tolerance comparison (strict: a global phase difference
    /// makes states unequal).
    #[must_use]
    pub fn approx_eq(&self, other: &StateVector) -> bool {
        self.dim() == other.dim()
            && self
                .amps
                .iter()
                .zip(other.amps.iter())
                .all(|(a, b)| a.approx_eq(*b))
    }

    /// Comparison up to one global phase factor.
    #[must_use]
    pub fn approx_eq_up_to_phase(&self, other: &StateVector) -> bool {
        if self.dim() != other.dim() {
            return false;
        }
        for k in 0..self.amps.len() {
            if !other.amps[k].approx_zero() {
                if self.amps[k].approx_zero() {
                    return false;
                }
                let phase = self.amps[k] / other.amps[k];
                if !approx::approx_eq(phase.abs(), 1.0) {
                    return false;
                }
                return self
                    .amps
                    .iter()
                    .zip(other.amps.iter())
                    .all(|(a, b)| a.approx_eq(*b * phase));
            }
        }
        self.amps.iter().all(|a| a.approx_zero())
    }
}

impl fmt::Display for StateVector {
    /// Renders non-negligible amplitudes as `α|bits⟩` terms.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, a) in self.amps.iter().enumerate() {
            if a.approx_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "({a})|{:0width$b}⟩", i, width = self.n_qubits)?;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Error constructing a [`StateVector`] from raw amplitudes.
#[derive(Debug, Clone, PartialEq)]
pub enum StateError {
    /// The amplitude count was not a power of two ≥ 2.
    BadDimension {
        /// The offending length.
        dim: usize,
    },
    /// The squared norm was not 1.
    NotNormalized {
        /// The measured squared norm.
        norm_sqr: f64,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::BadDimension { dim } => {
                write!(f, "amplitude count {dim} is not a power of two ≥ 2")
            }
            StateError::NotNormalized { norm_sqr } => {
                write!(f, "state is not normalized (|ψ|² = {norm_sqr})")
            }
        }
    }
}

impl std::error::Error for StateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use qnum::FRAC_1_SQRT_2;

    #[test]
    fn basis_states_are_one_hot() {
        let s = StateVector::basis(3, 5);
        assert_eq!(s.dim(), 8);
        assert_eq!(s.probability(5), 1.0);
        assert_eq!(s.probability(0), 0.0);
        assert!(s.is_normalized());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = StateVector::basis(2, 4);
    }

    #[test]
    fn from_amplitudes_validates() {
        let h = Complex::real(FRAC_1_SQRT_2);
        let ok = StateVector::from_amplitudes(vec![h, h]).unwrap();
        assert_eq!(ok.n_qubits(), 1);
        let e = StateVector::from_amplitudes(vec![Complex::ONE; 3]).unwrap_err();
        assert!(matches!(e, StateError::BadDimension { dim: 3 }));
        let e = StateVector::from_amplitudes(vec![Complex::ONE, Complex::ONE]).unwrap_err();
        assert!(matches!(e, StateError::NotNormalized { .. }));
        assert!(e.to_string().contains("not normalized"));
    }

    #[test]
    fn inner_product_of_orthogonal_basis_states() {
        let a = StateVector::basis(2, 0);
        let b = StateVector::basis(2, 3);
        assert!(a.inner_product(&b).approx_zero());
        assert!(a.inner_product(&a).approx_one());
        assert_eq!(a.fidelity(&b), 0.0);
    }

    #[test]
    fn fidelity_is_phase_insensitive() {
        let h = Complex::real(FRAC_1_SQRT_2);
        let plus = StateVector::from_amplitudes(vec![h, h]).unwrap();
        let phased =
            StateVector::from_amplitudes(vec![h * Complex::cis(0.7), h * Complex::cis(0.7)])
                .unwrap();
        assert!((plus.fidelity(&phased) - 1.0).abs() < 1e-10);
        assert!(plus.approx_eq_up_to_phase(&phased));
        assert!(!plus.approx_eq(&phased));
    }

    #[test]
    fn renormalize_restores_unit_norm() {
        let h = Complex::real(FRAC_1_SQRT_2);
        let mut s = StateVector::from_amplitudes(vec![h, h]).unwrap();
        for a in s.amplitudes_mut() {
            *a = *a * 1.001;
        }
        assert!(!s.is_normalized());
        s.renormalize();
        assert!(s.is_normalized());
    }

    #[test]
    fn display_shows_kets() {
        let s = StateVector::basis(2, 2);
        let text = s.to_string();
        assert!(text.contains("|10⟩"), "got: {text}");
    }
}
