//! End-to-end tests of the fault-injection engine and the campaign
//! runner: small-scale oracles against the complete DD check, the
//! determinism contract, and the shape of the aggregated report.

use qcec::campaign::{run_campaign, CampaignBenchmark, CampaignConfig, CompileRoute};
use qcec::{check_equivalence, Config, Outcome};
use qcirc::generators;
use qcirc::mapping::CouplingMap;
use qfault::{registry, GuardOptions, MutationKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Small (≤ 6 qubit) fixtures on which the complete check is instant.
fn fixtures() -> Vec<qcirc::Circuit> {
    vec![
        generators::ghz(4),
        generators::qft(4, true),
        generators::grover(3, 5, generators::optimal_grover_iterations(3)),
        generators::bernstein_vazirani(5, 0b10110),
    ]
}

/// Oracle: whenever the guard labels a mutation a real fault, the flow
/// must prove non-equivalence — and on these sizes the simulation stage
/// should find a counterexample within a handful of runs.
#[test]
fn guard_confirmed_faults_are_detected_by_the_flow() {
    let guard = GuardOptions::default();
    let config = Config::new().with_simulations(10).with_seed(3);
    let mut faults = 0usize;
    let mut detected_by_sim = 0usize;

    for (c_idx, circuit) in fixtures().iter().enumerate() {
        for (m_idx, mutator) in registry(0.2).iter().enumerate() {
            for trial in 0..3u64 {
                let seed = 1000 * c_idx as u64 + 10 * m_idx as u64 + trial;
                let mut rng = StdRng::seed_from_u64(seed);
                let Ok((mutated, record)) = mutator.apply(circuit, &mut rng) else {
                    continue;
                };
                if !qfault::guard::classify(circuit, &mutated, &guard).is_fault() {
                    continue;
                }
                faults += 1;
                let result = check_equivalence(circuit, &mutated, &config).unwrap();
                assert!(
                    result.outcome.is_not_equivalent(),
                    "{record}: flow missed a guard-confirmed fault"
                );
                if let Outcome::NotEquivalent {
                    counterexample: Some(ce),
                } = &result.outcome
                {
                    detected_by_sim += 1;
                    assert!(ce.run <= 10, "{record}: counterexample after run 10?");
                }
            }
        }
    }

    assert!(
        faults >= 40,
        "only {faults} confirmed faults — oracle too weak"
    );
    // The paper's claim: errors are caught by simulation almost always,
    // within very few runs.
    assert!(
        detected_by_sim * 10 >= faults * 9,
        "simulation found only {detected_by_sim} of {faults} faults"
    );
}

/// Benign mutations (the guard proves the unitary unchanged) must never be
/// flagged non-equivalent — the flow is sound.
#[test]
fn benign_mutations_are_never_flagged() {
    let guard = GuardOptions::default();
    let config = Config::new().with_simulations(10).with_seed(5);
    let mut benign = 0usize;

    for (c_idx, circuit) in fixtures().iter().enumerate() {
        for (m_idx, mutator) in registry(0.2).iter().enumerate() {
            for trial in 0..3u64 {
                let seed = 2000 * c_idx as u64 + 10 * m_idx as u64 + trial;
                let mut rng = StdRng::seed_from_u64(seed);
                let Ok((mutated, record)) = mutator.apply(circuit, &mut rng) else {
                    continue;
                };
                if !qfault::guard::classify(circuit, &mutated, &guard).is_benign() {
                    continue;
                }
                benign += 1;
                let result = check_equivalence(circuit, &mutated, &config).unwrap();
                assert!(
                    result.outcome.is_equivalent(),
                    "{record}: benign mutation flagged as {}",
                    result.outcome
                );
            }
        }
    }
    // SwapTargets on symmetric gates guarantees some benign instances.
    assert!(benign > 0, "no benign mutation sampled — guard never used");
}

#[test]
fn campaign_json_is_reproducible_and_complete() {
    let benches = vec![
        CampaignBenchmark::compile(
            "ghz 4",
            "ghz",
            &generators::ghz(4),
            &CompileRoute::Map(CouplingMap::linear(4)),
        ),
        CampaignBenchmark::optimized("qft 4", "qft", &generators::qft(4, true)),
        CampaignBenchmark::compile(
            "grover 3",
            "grover",
            &generators::grover(3, 5, 1),
            &CompileRoute::Decompose,
        ),
    ];
    let config = CampaignConfig::default()
        .with_seed(42)
        .with_trials(2)
        .with_simulations(6);

    let first = run_campaign(&benches, &config);
    let second = run_campaign(&benches, &config);
    assert_eq!(
        first.to_json(false),
        second.to_json(false),
        "campaign JSON must be byte-identical for a fixed seed"
    );

    // Report shape: every error class and every family is covered.
    let json = first.to_json(false);
    for kind in MutationKind::ALL {
        assert!(
            json.contains(&format!("\"class\":\"{}\"", kind.slug())),
            "class {kind} missing from report"
        );
    }
    for family in ["ghz", "qft", "grover"] {
        assert!(
            json.contains(&format!("\"family\":\"{family}\"")),
            "family {family} missing from report"
        );
    }

    // Soundness and power, aggregated.
    let mut faults = 0;
    let mut detected = 0;
    for (kind, s) in &first.classes {
        assert_eq!(s.false_positives, 0, "{kind}: benign mutation flagged");
        faults += s.faults;
        detected += s.detected_by_sim + s.detected_by_complete;
    }
    assert!(faults > 0);
    assert!(detected * 2 > faults, "detected {detected} of {faults}");
}

#[test]
fn campaign_markdown_renders_every_section() {
    let benches = vec![CampaignBenchmark::optimized(
        "qft 4",
        "qft",
        &generators::qft(4, true),
    )];
    let config = CampaignConfig::default().with_trials(1).with_simulations(4);
    let md = run_campaign(&benches, &config).to_markdown();
    for section in [
        "# Fault-injection campaign",
        "## Benchmarks",
        "## Detection by error class",
        "## Detected / faults per family",
        "stage summary",
    ] {
        assert!(md.contains(section), "missing section {section:?}");
    }
}

/// The tentpole contract: identical seeds produce byte-identical JSON for
/// any trial-thread count. Workers claim cells dynamically, so completion
/// order varies — the deterministic merge must hide that entirely.
#[test]
fn campaign_json_is_byte_identical_across_trial_thread_counts() {
    let benches = vec![
        CampaignBenchmark::compile(
            "ghz 4",
            "ghz",
            &generators::ghz(4),
            &CompileRoute::Map(CouplingMap::linear(4)),
        ),
        CampaignBenchmark::optimized("qft 4", "qft", &generators::qft(4, true)),
        CampaignBenchmark::compile(
            "grover 3",
            "grover",
            &generators::grover(3, 5, 1),
            &CompileRoute::Decompose,
        ),
    ];
    let base = CampaignConfig::default()
        .with_seed(11)
        .with_trials(3)
        .with_simulations(6);
    let reference = run_campaign(&benches, &base.clone().with_trial_threads(1)).to_json(false);
    for threads in [2usize, 8] {
        let parallel =
            run_campaign(&benches, &base.clone().with_trial_threads(threads)).to_json(false);
        assert_eq!(
            reference, parallel,
            "trial_threads = {threads} changed the reproducible JSON"
        );
    }
}

/// Guard memoization is an execution detail: switching the cache off must
/// not change one byte of the reproducible report.
#[test]
fn campaign_json_is_byte_identical_with_and_without_guard_cache() {
    let benches = vec![
        CampaignBenchmark::optimized("qft 4", "qft", &generators::qft(4, true)),
        CampaignBenchmark::compile(
            "grover 3",
            "grover",
            &generators::grover(3, 5, 1),
            &CompileRoute::Decompose,
        ),
    ];
    let base = CampaignConfig::default()
        .with_seed(13)
        .with_trials(2)
        .with_simulations(6);
    let cached = run_campaign(&benches, &base.clone().with_guard_cache(true));
    let uncached = run_campaign(&benches, &base.clone().with_guard_cache(false));
    assert_eq!(cached.to_json(false), uncached.to_json(false));
    // The cache's entire point: one golden build per benchmark instead of
    // one per checked trial.
    assert_eq!(cached.guard_stats.golden_builds, benches.len());
    assert_eq!(
        uncached.guard_stats.golden_builds,
        uncached.guard_stats.checks
    );
    assert!(uncached.guard_stats.golden_builds > cached.guard_stats.golden_builds);
}

/// The default-backend campaign JSON must stay byte-identical to the
/// pre-refactor golden: the backend axis may only change the output when
/// explicitly selected. Mirrors the `campaign` binary's scale-0 benchmark
/// set and the golden's exact flags (`--seed 7 --trials 2 --sims 6`).
#[test]
fn default_backend_json_matches_pre_refactor_golden() {
    let benches = vec![
        CampaignBenchmark::compile(
            "ghz 5",
            "ghz",
            &generators::ghz(5),
            &CompileRoute::Map(CouplingMap::linear(5)),
        ),
        CampaignBenchmark::compile(
            "qft 5",
            "qft",
            &generators::qft(5, true),
            &CompileRoute::Optimize,
        ),
        CampaignBenchmark::compile(
            "grover 3",
            "grover",
            &generators::grover(3, 5, generators::optimal_grover_iterations(3)),
            &CompileRoute::Decompose,
        ),
    ];
    let config = CampaignConfig::default()
        .with_seed(7)
        .with_trials(2)
        .with_simulations(6)
        .with_threads(2)
        .with_epsilon(0.1);
    let json = run_campaign(&benches, &config).to_json(false);
    let golden = std::fs::read_to_string(
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/campaign_default.json"),
    )
    .expect("golden campaign JSON");
    assert_eq!(json, golden.trim_end(), "default campaign JSON drifted");
    // The batch axis is verdict-neutral and digest-exempt: spelling out
    // the default batch size explicitly must not move a byte either.
    let explicit = run_campaign(&benches, &config.with_batches(vec![1])).to_json(false);
    assert_eq!(explicit, golden.trim_end(), "explicit batch=1 drifted");
}

/// A four-scheme ablation campaign is as deterministic as the default one:
/// reruns and trial-thread variations are byte-identical, every arm
/// renders in the breakdown, and — because the scheme only reorders the
/// complete check's multiplications — all four arms report identical
/// detection statistics.
#[test]
fn scheme_ablation_campaign_is_deterministic_and_arms_agree() {
    use qcec::ApplicationScheme;
    let benches = vec![
        CampaignBenchmark::optimized("qft 4", "qft", &generators::qft(4, true)),
        CampaignBenchmark::compile(
            "grover 3",
            "grover",
            &generators::grover(3, 5, 1),
            &CompileRoute::Decompose,
        ),
    ];
    let base = CampaignConfig::default()
        .with_seed(17)
        .with_trials(2)
        .with_simulations(6)
        .with_schemes(ApplicationScheme::ALL.to_vec());

    let first = run_campaign(&benches, &base);
    let rerun = run_campaign(&benches, &base).to_json(false);
    assert_eq!(first.to_json(false), rerun, "scheme-ablation rerun drifted");
    for threads in [2usize, 8] {
        let parallel =
            run_campaign(&benches, &base.clone().with_trial_threads(threads)).to_json(false);
        assert_eq!(
            first.to_json(false),
            parallel,
            "trial_threads = {threads} changed the scheme-ablation JSON"
        );
    }

    let json = first.to_json(false);
    for scheme in ApplicationScheme::ALL {
        assert!(
            json.contains(&format!("\"scheme\":\"{}\"", scheme.slug())),
            "scheme {scheme} missing from breakdown"
        );
    }
    // Identical faults, identical verdicts: each arm's per-class stats
    // must equal the first arm's exactly.
    let (_, reference) = &first.scheme_classes[0];
    for (scheme, classes) in &first.scheme_classes[1..] {
        assert_eq!(classes, reference, "{scheme}: detection stats diverged");
    }
    // The markdown gains its own ablation section only in this mode.
    assert!(first
        .to_markdown()
        .contains("## Detection by application scheme"));
}

/// A single non-default scheme renders as a `"scheme"` config field (and
/// no breakdown); the seed contract means its trials face the same faults
/// as a default campaign's.
#[test]
fn single_scheme_campaign_renders_config_field_only() {
    use qcec::ApplicationScheme;
    let benches = vec![CampaignBenchmark::optimized(
        "qft 4",
        "qft",
        &generators::qft(4, true),
    )];
    let base = CampaignConfig::default().with_trials(1).with_simulations(4);
    let gatecost = run_campaign(
        &benches,
        &base.clone().with_scheme(ApplicationScheme::GateCost),
    );
    let json = gatecost.to_json(false);
    assert!(json.contains("\"scheme\":\"gatecost\""));
    assert!(!json.contains("\"schemes\":"));
    // Same faults, same verdicts as the default-scheme campaign — only
    // the config field differs.
    let default = run_campaign(&benches, &base).to_json(false);
    assert_eq!(
        json.replace(",\"scheme\":\"gatecost\"", ""),
        default,
        "a scheme change must not alter detection results"
    );
}

/// Double faults that cancel are guard-labelled benign; the accounting must
/// file such trials under `benign` and never under `missed`, whatever the
/// flow answered.
#[test]
fn benign_trials_are_never_counted_as_detection_misses() {
    use qcec::campaign::{ClassStats, Detection, TrialRecord};
    let benign_trial = |detection| TrialRecord {
        benchmark: 0,
        backend: qcec::BackendKind::Statevector,
        scheme: qcec::ApplicationScheme::Proportional,
        strategy: qcec::StimulusStrategy::Random,
        chi: 64,
        batch: 1,
        kind: MutationKind::AddGate,
        trial: 0,
        seed: 7,
        mutations: vec!["add_gate then remove_gate, cancelling".into()],
        guard: qfault::GuardVerdict::Benign { phase: Some(0.0) },
        detection: Some(detection),
        sims_run: 6,
    };
    let mut stats = ClassStats::default();
    // The flow correctly found no difference.
    stats.record(&benign_trial(Detection::Missed));
    assert_eq!((stats.benign, stats.missed), (1, 0));
    assert_eq!(stats.false_positives, 0);
    // Even a (hypothetically unsound) flow verdict must not leak a benign
    // trial into the missed-fault count — it is a false positive instead.
    stats.record(&benign_trial(Detection::Simulation { sims: 1 }));
    assert_eq!((stats.benign, stats.missed), (2, 0));
    assert_eq!(stats.false_positives, 1);
    assert_eq!(stats.faults, 0, "benign trials are not faults");
}
