//! Measures stage-event *drain latency* under cancellation.
//!
//! When a scheduled run is cancelled, the worker pool winds down:
//! in-flight simulations either observe the token and abort or run to
//! completion. The gap between the `Cancelled` event landing in the sink
//! and [`qcec::check_equivalence`] returning is the **drain latency** —
//! the time a caller keeps waiting after the verdict is already decided,
//! and the window in which late `SimulationFinished`/`SimulationAborted`
//! events still arrive. Deterministic post-cancellation event *counters*
//! (a ROADMAP item) need this window quantified first; this bin measures
//! it.
//!
//! Two arms, because the scheduler has two cancellation paths:
//!
//! - `counterexample`: a faulty pair, no portfolio. The scheduler posts
//!   `Cancelled { SimulationCounterexample }` only *after* the pool has
//!   joined and the ordered replay has judged the overlaps
//!   (`scheduler/mod.rs`), so the measured drain is just the return
//!   epilogue and no late events can arrive.
//! - `portfolio`: an equivalent pair with `portfolio` enabled. The
//!   functional racer posts `Cancelled { FunctionalVerdict }` mid-flight
//!   from its own thread, so the drain covers the real worker wind-down
//!   and late `SimulationFinished`/`SimulationAborted` events land in the
//!   sink during it.
//!
//! For each thread count, the pair is checked `--trials` times; the
//! per-trial drain is `t_return − t_cancelled`. Stats go to stdout as
//! JSON (wall-clock numbers — this bin is a measurement, not a
//! reproducibility fixture).
//!
//! ```text
//! cargo run --release -p bench --bin drain -- --trials 20 --threads 2,4
//! ```

use std::process::exit;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qcec::report::json::{self, Obj};
use qcec::scheduler::{EventSink, RunEvent};
use qcec::Config;
use qcirc::{generators, Circuit};

/// Stamps the arrival time of the first `Cancelled` event and counts the
/// events that land after it.
#[derive(Debug, Default)]
struct CancelStamp {
    cancelled_at: Mutex<Option<Instant>>,
    late_events: Mutex<usize>,
}

impl EventSink for CancelStamp {
    fn record(&self, event: RunEvent) {
        let mut at = self.cancelled_at.lock().expect("stamp lock");
        match (&*at, &event) {
            (None, RunEvent::Cancelled { .. }) => *at = Some(Instant::now()),
            (Some(_), _) => {
                *self.late_events.lock().expect("stamp lock") += 1;
            }
            _ => {}
        }
    }
}

struct Args {
    trials: usize,
    sims: usize,
    threads: Vec<usize>,
}

fn usage() -> ! {
    eprintln!("usage: drain [--trials N] [--sims N] [--threads T[,T...]]");
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        trials: 20,
        sims: 32,
        threads: vec![2, 4],
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--trials" => args.trials = val("--trials").parse().unwrap_or_else(|_| usage()),
            "--sims" => args.sims = val("--sims").parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                args.threads = val("--threads")
                    .split(',')
                    .map(|t| t.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.threads.is_empty() {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

/// Runs one measurement arm: `trials` checks of `(golden, other)` per
/// thread count, returning one rendered JSON row per thread count.
fn run_arm(
    mode: &str,
    golden: &Circuit,
    other: &Circuit,
    portfolio: bool,
    args: &Args,
) -> Vec<String> {
    let mut rows = Vec::new();
    for &threads in &args.threads {
        let mut drains: Vec<Duration> = Vec::with_capacity(args.trials);
        let mut late_total = 0usize;
        let mut cancels = 0usize;
        for trial in 0..args.trials {
            let stamp = Arc::new(CancelStamp::default());
            let config = Config::new()
                .with_simulations(args.sims)
                .with_seed(trial as u64)
                .with_threads(threads)
                .with_portfolio(portfolio)
                .with_event_sink(stamp.clone());
            let _result =
                qcec::check_equivalence(golden, other, &config).expect("well-formed pair");
            let returned_at = Instant::now();
            let cancelled_at = *stamp.cancelled_at.lock().expect("stamp lock");
            if let Some(at) = cancelled_at {
                cancels += 1;
                drains.push(returned_at.duration_since(at));
                late_total += *stamp.late_events.lock().expect("stamp lock");
            }
        }
        drains.sort_unstable();
        // An empty f64 sum is -0.0; keep zero-cancellation rows at plain 0.
        let mean = if drains.is_empty() {
            0.0
        } else {
            drains.iter().map(Duration::as_secs_f64).sum::<f64>() / drains.len() as f64
        };
        let max = drains.last().copied().unwrap_or_default().as_secs_f64();
        let median = drains
            .get(drains.len() / 2)
            .copied()
            .unwrap_or_default()
            .as_secs_f64();
        let mut o = Obj::new();
        o.str("mode", mode)
            .int("threads", threads as u64)
            .int("trials", args.trials as u64)
            .int("cancellations", cancels as u64)
            .num("drain_mean_s", mean)
            .num("drain_median_s", median)
            .num("drain_max_s", max)
            .num(
                "late_events_per_cancel",
                late_total as f64 / cancels.max(1) as f64,
            );
        eprintln!(
            "{mode} threads {threads}: {cancels}/{} cancelled, mean drain {:.1} us, \
             median {:.1} us, max {:.1} us, {:.1} post-cancel events/run",
            args.trials,
            mean * 1e6,
            median * 1e6,
            max * 1e6,
            late_total as f64 / cancels.max(1) as f64,
        );
        rows.push(o.render());
    }
    rows
}

fn main() {
    let args = parse_args();
    // A wide supremacy-style circuit: expensive enough per stimulus that
    // pool wind-down is observable, small enough that trials stay fast.
    let golden = generators::supremacy_2d(3, 4, 8, 11);
    let mut faulty = golden.clone();
    faulty.x(5);
    let equivalent = golden.clone();

    let mut rows = Vec::new();
    // Arm 1: simulation counterexample. The Cancelled event is posted
    // after the pool join, so this measures the return epilogue only.
    rows.extend(run_arm("counterexample", &golden, &faulty, false, &args));
    // Arm 2: portfolio racer. The functional check proves equivalence and
    // cancels the still-running simulations from its own thread, so this
    // measures the real wind-down window.
    rows.extend(run_arm("portfolio", &golden, &equivalent, true, &args));

    let mut root = Obj::new();
    root.int("sims", args.sims as u64)
        .raw("rows", json::array(rows));
    println!("{}", root.render());
}
