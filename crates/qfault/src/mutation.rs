//! The vocabulary of injected faults: kinds, records, and failure modes.

use std::fmt;

/// The fault classes of the compilation-flow error catalogue.
///
/// The variants carry no parameters so the kind can serve as an aggregation
/// key in campaign reports; per-instance parameters (the perturbation
/// offset, the chosen qubits) live in the [`Mutation`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MutationKind {
    /// One gate removed.
    RemoveGate,
    /// One spurious gate inserted.
    AddGate,
    /// One control line dropped from a controlled gate.
    RemoveControl,
    /// One spurious control line added to a gate.
    AddControl,
    /// A control exchanged with a target on one gate.
    SwapTargets,
    /// One rotation angle offset by `±ε`.
    PerturbAngle,
    /// Two adjacent non-commuting gates exchanged.
    SwapAdjacentGates,
    /// Two qubit labels exchanged from some gate index onward.
    RelabelQubits,
}

impl MutationKind {
    /// Every kind, in reporting order.
    pub const ALL: [MutationKind; 8] = [
        MutationKind::RemoveGate,
        MutationKind::AddGate,
        MutationKind::RemoveControl,
        MutationKind::AddControl,
        MutationKind::SwapTargets,
        MutationKind::PerturbAngle,
        MutationKind::SwapAdjacentGates,
        MutationKind::RelabelQubits,
    ];

    /// A stable `snake_case` identifier used as a JSON/CLI key.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            MutationKind::RemoveGate => "remove_gate",
            MutationKind::AddGate => "add_gate",
            MutationKind::RemoveControl => "remove_control",
            MutationKind::AddControl => "add_control",
            MutationKind::SwapTargets => "swap_targets",
            MutationKind::PerturbAngle => "perturb_angle",
            MutationKind::SwapAdjacentGates => "swap_adjacent_gates",
            MutationKind::RelabelQubits => "relabel_qubits",
        }
    }

    /// Parses a [`MutationKind::slug`] back into a kind.
    #[must_use]
    pub fn from_slug(slug: &str) -> Option<MutationKind> {
        MutationKind::ALL.iter().copied().find(|k| k.slug() == slug)
    }
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// A structured record of one injected fault.
///
/// Together with the seed that drove the mutator, the record makes every
/// fault exactly reproducible and lets campaign reports describe *what*
/// was broken, not just that something was.
#[derive(Debug, Clone, PartialEq)]
pub struct Mutation {
    /// Which fault class.
    pub kind: MutationKind,
    /// Gate index the fault anchors to: for removals and in-place edits the
    /// index in the *input* circuit, for insertions the index the new gate
    /// has in the *output*, for relabellings the first affected index.
    pub site: usize,
    /// Numeric parameters of the instance (e.g. the angle offset for
    /// [`MutationKind::PerturbAngle`], the two exchanged qubit labels for
    /// [`MutationKind::RelabelQubits`]).
    pub params: Vec<f64>,
    /// Human-readable description (`"'cx q[0], q[1]' → 'cx q[0], q[2]'"`).
    pub description: String,
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at gate {}: {}",
            self.kind, self.site, self.description
        )
    }
}

/// Error returned when a fault class has no applicable site in a circuit
/// (e.g. [`MutationKind::PerturbAngle`] on a Clifford-only circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutateError {
    /// The fault class that could not be applied.
    pub kind: MutationKind,
    /// Why.
    pub reason: String,
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot inject '{}': {}", self.kind, self.reason)
    }
}

impl std::error::Error for MutateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_round_trip() {
        for kind in MutationKind::ALL {
            assert_eq!(MutationKind::from_slug(kind.slug()), Some(kind));
        }
        assert_eq!(MutationKind::from_slug("nonsense"), None);
    }

    #[test]
    fn all_kinds_are_distinct() {
        let mut slugs: Vec<&str> = MutationKind::ALL.iter().map(|k| k.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), MutationKind::ALL.len());
    }

    #[test]
    fn displays_are_informative() {
        let m = Mutation {
            kind: MutationKind::RemoveGate,
            site: 3,
            params: vec![],
            description: "removed 'h q[0]'".to_string(),
        };
        assert_eq!(m.to_string(), "remove_gate at gate 3: removed 'h q[0]'");
        let e = MutateError {
            kind: MutationKind::PerturbAngle,
            reason: "no parameterized gates".to_string(),
        };
        assert!(e.to_string().contains("perturb_angle"));
    }
}
