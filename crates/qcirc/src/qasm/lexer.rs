//! Tokenizer for OpenQASM 2.0 source text.

use std::fmt;

/// A lexical token with its source line (1-based) for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// The kinds of token OpenQASM 2.0 uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (`qreg`, `gate`, `cx`, …).
    Ident(String),
    /// An unsigned integer literal.
    Int(u64),
    /// A real literal.
    Real(f64),
    /// A double-quoted string literal (contents only).
    Str(String),
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Real(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Caret => write!(f, "^"),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::EqEq => write!(f, "=="),
        }
    }
}

/// Error produced when the source contains a character or literal the lexer
/// cannot understand.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes OpenQASM 2.0 source, skipping `//` comments and whitespace.
///
/// # Errors
///
/// Returns [`LexError`] on unknown characters, unterminated strings, or
/// malformed numeric literals.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    line,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    line,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    line,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    line,
                });
                i += 1;
            }
            '^' => {
                tokens.push(Token {
                    kind: TokenKind::Caret,
                    line,
                });
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Minus,
                        line,
                    });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected '==' after '='".into(),
                        line,
                    });
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\n' {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            line,
                        });
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(source[start..j].to_string()),
                    line,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E') && !saw_exp && i > start {
                        saw_exp = true;
                        i += 1;
                        if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &source[start..i];
                if saw_dot || saw_exp {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        message: format!("invalid real literal '{text}'"),
                        line,
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Real(v),
                        line,
                    });
                } else {
                    let v: u64 = text.parse().map_err(|_| LexError {
                        message: format!("invalid integer literal '{text}'"),
                        line,
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Int(v),
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(source[start..i].to_string()),
                    line,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    line,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_header() {
        let ks = kinds("OPENQASM 2.0;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("OPENQASM".into()),
                TokenKind::Real(2.0),
                TokenKind::Semicolon
            ]
        );
    }

    #[test]
    fn tokenizes_gate_application() {
        let ks = kinds("rz(pi/2) q[0];");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("rz".into()),
                TokenKind::LParen,
                TokenKind::Ident("pi".into()),
                TokenKind::Slash,
                TokenKind::Int(2),
                TokenKind::RParen,
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Int(0),
                TokenKind::RBracket,
                TokenKind::Semicolon
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = tokenize("// header\nx q[1];").unwrap();
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
    }

    #[test]
    fn arrow_and_equality() {
        assert_eq!(kinds("->"), vec![TokenKind::Arrow]);
        assert_eq!(kinds("=="), vec![TokenKind::EqEq]);
        assert_eq!(
            kinds("1 - 2"),
            vec![TokenKind::Int(1), TokenKind::Minus, TokenKind::Int(2)]
        );
    }

    #[test]
    fn string_literal() {
        assert_eq!(
            kinds("include \"qelib1.inc\";"),
            vec![
                TokenKind::Ident("include".into()),
                TokenKind::Str("qelib1.inc".into()),
                TokenKind::Semicolon
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::Real(1.5e-3)]);
        assert_eq!(kinds("2E4"), vec![TokenKind::Real(2e4)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("x q[0]; @").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a = b").is_err());
    }
}
