//! Regenerates the Section IV-A theory analysis (experiment TH1):
//! detection probability of a random basis-state simulation against the
//! number of controls `c` on the difference gate.
//!
//! Prints, per `c`: the predicted per-run detection probability `2^{−c}`,
//! the predicted probability after `r = 10` runs, the *measured* per-run
//! rate over many random probes, and the exact fraction of differing
//! unitary columns (dense construction) — all of which should coincide.
//!
//! Environment: `QCEC_BENCH_SCALE` (0 → 500 trials, else 4000).

use bench::scale_from_env;
use qcec::theory::{
    controlled_difference_gate, differing_columns, empirical_detection_rate,
    predicted_detection_probability, predicted_detection_probability_after,
};
use qcirc::Circuit;

fn main() {
    let trials = if scale_from_env() == 0 { 500 } else { 4000 };
    let n = 8;
    println!("Section IV-A — detection probability vs controls (n = {n}, {trials} trials)");
    println!(
        "{:>2} {:>12} {:>12} {:>12} {:>16}",
        "c", "pred/run", "pred r=10", "measured", "diff columns"
    );
    for c in 0..n {
        let predicted = predicted_detection_probability(c);
        let after_ten = predicted_detection_probability_after(c, 10);
        let measured = empirical_detection_rate(n, c, trials, 0x5EED + c as u64);
        let reference = Circuit::new(n);
        let mut with_error = Circuit::new(n);
        with_error.append(&controlled_difference_gate(n, c));
        let cols = differing_columns(&reference, &with_error);
        println!(
            "{:>2} {:>12.4} {:>12.4} {:>12.4} {:>9}/{:<6}",
            c,
            predicted,
            after_ten,
            measured,
            cols,
            1 << n
        );
    }
    println!();
    println!("Example 7 (c = 0): every column differs → 100% of simulations detect the error.");
    println!("Example 8 (c = n−1): only 2 of 2ⁿ columns differ → worst case for random stimuli.");
}
