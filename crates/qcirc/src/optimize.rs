//! Circuit optimization passes (\[11\], \[12\] in the paper's design flow).
//!
//! Every pass preserves the circuit unitary *exactly* (not merely up to
//! global phase), so optimized circuits remain strictly equivalent — the
//! property the equivalence checker verifies. Passes:
//!
//! * [`remove_identities`] — drops explicit identity gates and zero
//!   rotations,
//! * [`cancel_inverse_pairs`] — removes adjacent gate/inverse pairs
//!   (adjacency on the gate's qubit wires, not in the flat list),
//! * [`merge_rotations`] — fuses wire-adjacent same-axis rotations,
//! * [`rewrite_h_cx_h`] — replaces `H(t) · CX(c,t) · H(t)` with `CZ(c,t)`,
//! * [`optimize`] — runs all passes to a fixpoint.

use qnum::angle;

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// Removes gates that are (numerically) the identity: explicit `I` gates,
/// phase gates with `λ ≡ 0 (mod 2π)`, and rotations with `θ ≡ 0 (mod 4π)`
/// (rotations have period 4π as matrices; `Rz(2π) = −I` is kept because the
/// global phase becomes physical under controls).
#[must_use]
pub fn remove_identities(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_name(circuit.n_qubits(), circuit.name().to_string());
    for g in circuit.gates() {
        if is_strict_identity(g.kind()) {
            continue;
        }
        out.push(g.clone());
    }
    out
}

fn is_strict_identity(kind: &GateKind) -> bool {
    match *kind {
        GateKind::I => true,
        GateKind::Phase(l) => angle::approx_zero_mod_2pi(l),
        GateKind::Rx(t) | GateKind::Ry(t) | GateKind::Rz(t) => {
            // θ ≡ 0 mod 4π ⇒ the matrix is exactly I.
            angle::approx_zero_mod_2pi(t / 2.0)
        }
        GateKind::U3(t, p, l) => {
            angle::approx_zero_mod_2pi(t / 2.0) && angle::approx_zero_mod_2pi(p + l)
        }
        _ => false,
    }
}

/// Cancels wire-adjacent inverse pairs (e.g. `H·H`, `CX·CX`,
/// `Rz(θ)·Rz(−θ)`), cascading until no pair remains.
#[must_use]
pub fn cancel_inverse_pairs(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Option<Gate>> = circuit.gates().iter().cloned().map(Some).collect();
    // Repeat single scans until a fixpoint; each scan cancels pairs that are
    // adjacent on every wire they touch.
    loop {
        let mut changed = false;
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
        for i in 0..gates.len() {
            let Some(gate) = gates[i].clone() else {
                continue;
            };
            // The candidate partner must be the last alive gate on *all* of
            // this gate's qubits.
            let mut partner: Option<usize> = None;
            let mut blocked = false;
            for q in gate.qubits() {
                match (partner, last_on_qubit[q]) {
                    (_, None) => blocked = true,
                    (None, Some(j)) => partner = Some(j),
                    (Some(p), Some(j)) if p != j => blocked = true,
                    _ => {}
                }
            }
            if !blocked {
                if let Some(j) = partner {
                    let prev = gates[j].as_ref().expect("partner is alive");
                    // The partner must also touch exactly the same qubits —
                    // otherwise an interleaving wire escapes cancellation.
                    if prev.is_inverse_of(&gate) {
                        for q in gate.qubits() {
                            last_on_qubit[q] = None;
                        }
                        gates[i] = None;
                        gates[j] = None;
                        changed = true;
                        continue;
                    }
                }
            }
            for q in gate.qubits() {
                last_on_qubit[q] = Some(i);
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = Circuit::with_name(circuit.n_qubits(), circuit.name().to_string());
    out.extend(gates.into_iter().flatten());
    out
}

/// Fuses wire-adjacent rotations of the same axis, same target and same
/// controls: `Rz(a)·Rz(b) → Rz(a+b)` (likewise `Rx`, `Ry`, `Phase`), then
/// drops any fused rotation that became the exact identity.
#[must_use]
pub fn merge_rotations(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Option<Gate>> = circuit.gates().iter().cloned().map(Some).collect();
    loop {
        let mut changed = false;
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
        for i in 0..gates.len() {
            let Some(gate) = gates[i].clone() else {
                continue;
            };
            let mut partner: Option<usize> = None;
            let mut blocked = false;
            for q in gate.qubits() {
                match (partner, last_on_qubit[q]) {
                    (_, None) => blocked = true,
                    (None, Some(j)) => partner = Some(j),
                    (Some(p), Some(j)) if p != j => blocked = true,
                    _ => {}
                }
            }
            if !blocked {
                if let Some(j) = partner {
                    let prev = gates[j].clone().expect("partner is alive");
                    if prev.controls() == gate.controls() && prev.targets() == gate.targets() {
                        if let Some(kind) = fuse(prev.kind(), gate.kind()) {
                            for q in gate.qubits() {
                                last_on_qubit[q] = None;
                            }
                            gates[j] = None;
                            if is_strict_identity(&kind) {
                                gates[i] = None;
                            } else {
                                let merged = if gate.controls().is_empty() {
                                    Gate::single(kind, gate.target())
                                } else {
                                    Gate::controlled(kind, gate.controls().to_vec(), gate.target())
                                };
                                for q in merged.qubits() {
                                    last_on_qubit[q] = Some(i);
                                }
                                gates[i] = Some(merged);
                            }
                            changed = true;
                            continue;
                        }
                    }
                }
            }
            for q in gate.qubits() {
                last_on_qubit[q] = Some(i);
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = Circuit::with_name(circuit.n_qubits(), circuit.name().to_string());
    out.extend(gates.into_iter().flatten());
    out
}

/// Fuses two rotation kinds of the same axis, if possible.
fn fuse(a: &GateKind, b: &GateKind) -> Option<GateKind> {
    Some(match (*a, *b) {
        (GateKind::Rx(x), GateKind::Rx(y)) => GateKind::Rx(fuse_rotation(x, y)),
        (GateKind::Ry(x), GateKind::Ry(y)) => GateKind::Ry(fuse_rotation(x, y)),
        (GateKind::Rz(x), GateKind::Rz(y)) => GateKind::Rz(fuse_rotation(x, y)),
        (GateKind::Phase(x), GateKind::Phase(y)) => GateKind::Phase(angle_sum_mod_2pi(x, y)),
        _ => return None,
    })
}

/// Adds rotation angles, canonicalizing into `(−2π, 2π]` (period 4π in the
/// matrix, so only full 4π turns may be dropped).
fn fuse_rotation(x: f64, y: f64) -> f64 {
    let s = x + y;
    // Reduce modulo 4π toward a small representative, preserving the matrix.
    let four_pi = 4.0 * std::f64::consts::PI;
    let mut t = s % four_pi;
    if t > 2.0 * std::f64::consts::PI {
        t -= four_pi;
    } else if t <= -2.0 * std::f64::consts::PI {
        t += four_pi;
    }
    t
}

fn angle_sum_mod_2pi(x: f64, y: f64) -> f64 {
    angle::normalize(x + y)
}

/// Rewrites every `H(t) · CX(c, t) · H(t)` triple (wire-adjacent) into a
/// single `CZ(c, t)` — an exact identity that shortens mapped circuits.
#[must_use]
pub fn rewrite_h_cx_h(circuit: &Circuit) -> Circuit {
    let gates = circuit.gates();
    let mut out = Circuit::with_name(circuit.n_qubits(), circuit.name().to_string());
    let mut i = 0;
    while i < gates.len() {
        if i + 2 < gates.len() {
            let (a, b, c) = (&gates[i], &gates[i + 1], &gates[i + 2]);
            let is_h_on = |g: &Gate, q: usize| {
                *g.kind() == GateKind::H && g.controls().is_empty() && g.target() == q
            };
            if *b.kind() == GateKind::X && b.controls().len() == 1 {
                let t = b.target();
                if is_h_on(a, t) && is_h_on(c, t) {
                    out.cz(b.controls()[0], t);
                    i += 3;
                    continue;
                }
            }
        }
        out.push(gates[i].clone());
        i += 1;
    }
    out
}

/// Conservative syntactic commutation check for two gates that share
/// qubits (disjoint gates trivially commute and are handled by callers).
///
/// Rules (each exact, never heuristic):
/// 1. two diagonal gates always commute (controlled-diagonal gates are
///    diagonal as full matrices);
/// 2. two controlled-X gates commute when they share only controls or only
///    targets;
/// 3. a diagonal gate acting entirely on another gate's *controls*
///    commutes with it;
/// 4. an uncontrolled X-axis gate (X, √X, Rx) on a controlled-X *target*
///    commutes with it.
#[must_use]
pub fn gates_commute(a: &Gate, b: &Gate) -> bool {
    if a.is_disjoint_from(b) {
        return true;
    }
    let diag = |g: &Gate| *g.kind() != GateKind::Swap && g.kind().is_diagonal();
    // Rule 1.
    if diag(a) && diag(b) {
        return true;
    }
    // Rule 2.
    let is_cx = |g: &Gate| *g.kind() == GateKind::X && !g.controls().is_empty();
    if is_cx(a) && is_cx(b) {
        let shared_ct = |x: &Gate, y: &Gate| {
            x.controls().contains(&y.target()) || y.controls().contains(&x.target())
        };
        if !shared_ct(a, b) {
            return true; // overlap is controls-with-controls or target-with-target
        }
        return false;
    }
    // Rules 3 and 4 (check both orders).
    let one_way = |d: &Gate, g: &Gate| -> bool {
        // Rule 3: d diagonal, every shared qubit is one of g's controls.
        if diag(d)
            && d.qubits()
                .all(|q| g.controls().contains(&q) || g.qubits().all(|p| p != q))
        {
            return true;
        }
        // Rule 4: d is an uncontrolled X-axis gate sitting on g's X target.
        let x_axis = matches!(
            d.kind(),
            GateKind::X | GateKind::Sx | GateKind::Sxdg | GateKind::Rx(_)
        );
        if x_axis
            && d.controls().is_empty()
            && *g.kind() == GateKind::X
            && !g.controls().is_empty()
            && d.target() == g.target()
        {
            return true;
        }
        false
    };
    one_way(a, b) || one_way(b, a)
}

/// Inverse-pair cancellation that sees *through* commuting gates: a pair
/// `g … g⁻¹` cancels when every gate between the two commutes with `g`.
///
/// Strictly stronger than [`cancel_inverse_pairs`] (e.g. the two CX in
/// `CX(0,1) · Rz(0,θ) · CX(0,1)` cancel because Rz sits on the control),
/// at `O(m·w)` cost with lookahead window `w`.
#[must_use]
pub fn cancel_with_commutation(circuit: &Circuit) -> Circuit {
    const WINDOW: usize = 64;
    let mut gates: Vec<Option<Gate>> = circuit.gates().iter().cloned().map(Some).collect();
    loop {
        let mut changed = false;
        for i in 0..gates.len() {
            let Some(gate) = gates[i].clone() else {
                continue;
            };
            let mut scanned = 0usize;
            for j in i + 1..gates.len() {
                if scanned >= WINDOW {
                    break;
                }
                let Some(other) = gates[j].clone() else {
                    continue;
                };
                scanned += 1;
                if other.is_inverse_of(&gate) {
                    gates[i] = None;
                    gates[j] = None;
                    changed = true;
                    break;
                }
                if !gates_commute(&gate, &other) {
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = Circuit::with_name(circuit.n_qubits(), circuit.name().to_string());
    out.extend(gates.into_iter().flatten());
    out
}

/// Fuses every maximal run of uncontrolled single-qubit gates on a wire
/// into at most five gates (`Rz·Ry·Rz` from the ZYZ decomposition of the
/// run's product, plus a `P`/`Rz` pair realizing the global phase), keeping
/// the unitary *exactly* equal.
///
/// Runs that would not shrink are left untouched. This is the classic
/// simulator-side "gate fusion": long rotation chains (e.g. Trotter
/// circuits) collapse to constant-size blocks, cutting simulation cost.
///
/// # Examples
///
/// ```
/// use qcirc::{optimize, Circuit};
///
/// let mut c = Circuit::new(1);
/// c.h(0).t(0).h(0).s(0).h(0).t(0).h(0).x(0);
/// let fused = optimize::fuse_single_qubit_runs(&c);
/// assert!(fused.len() <= 5);
/// ```
#[must_use]
pub fn fuse_single_qubit_runs(circuit: &Circuit) -> Circuit {
    use qnum::Matrix2;
    let mut out = Circuit::with_name(circuit.n_qubits(), circuit.name().to_string());
    // Pending per-qubit product and the original gates of the run.
    let mut pending: Vec<Option<(Matrix2, Vec<Gate>)>> = vec![None; circuit.n_qubits()];

    fn flush(out: &mut Circuit, q: usize, slot: &mut Option<(qnum::Matrix2, Vec<Gate>)>) {
        let Some((product, originals)) = slot.take() else {
            return;
        };
        let angles = crate::decompose::zyz(&product);
        let mut fused: Vec<Gate> = Vec::with_capacity(5);
        let mut push_if = |kind: GateKind, nonzero: f64| {
            if !qnum::approx::approx_zero(nonzero) {
                fused.push(Gate::single(kind, q));
            }
        };
        push_if(GateKind::Rz(angles.delta), angles.delta);
        push_if(GateKind::Ry(angles.gamma), angles.gamma);
        push_if(GateKind::Rz(angles.beta), angles.beta);
        if !qnum::approx::approx_zero(angles.alpha) {
            // Global phase e^{iα} = P(2α) · Rz(−2α).
            fused.push(Gate::single(GateKind::Phase(2.0 * angles.alpha), q));
            fused.push(Gate::single(GateKind::Rz(-2.0 * angles.alpha), q));
        }
        if fused.len() < originals.len() {
            out.extend(fused);
        } else {
            out.extend(originals);
        }
    }

    for gate in circuit.gates() {
        if gate.width() == 1 && gate.controls().is_empty() {
            let q = gate.target();
            let m = gate.kind().base_matrix().expect("single-target kind");
            match &mut pending[q] {
                Some((product, originals)) => {
                    *product = m.mul(product);
                    originals.push(gate.clone());
                }
                slot @ None => *slot = Some((m, vec![gate.clone()])),
            }
        } else {
            for q in gate.qubits() {
                let mut slot = pending[q].take();
                flush(&mut out, q, &mut slot);
            }
            out.push(gate.clone());
        }
    }
    for (q, p) in pending.iter_mut().enumerate() {
        let mut slot = p.take();
        flush(&mut out, q, &mut slot);
    }
    out
}

/// Runs all passes to a fixpoint (bounded by a generous iteration cap).
///
/// The result is strictly (not merely phase-) equivalent to the input.
///
/// # Examples
///
/// ```
/// use qcirc::{optimize, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(0).rz(0.3, 1).rz(-0.3, 1).cx(0, 1).cx(0, 1);
/// assert!(optimize::optimize(&c).is_empty());
/// ```
#[must_use]
pub fn optimize(circuit: &Circuit) -> Circuit {
    let mut current = circuit.clone();
    for _ in 0..32 {
        let next = rewrite_h_cx_h(&merge_rotations(&cancel_with_commutation(
            &remove_identities(&current),
        )));
        if next.len() == current.len() {
            return next;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    fn assert_strictly_equal(a: &Circuit, b: &Circuit) {
        assert!(
            dense::unitary(a).approx_eq(&dense::unitary(b)),
            "optimization changed the unitary"
        );
    }

    #[test]
    fn identities_are_removed() {
        let mut c = Circuit::new(2);
        c.id(0)
            .x(1)
            .p(0.0, 0)
            .rz(0.0, 1)
            .rz(4.0 * std::f64::consts::PI, 0);
        let o = remove_identities(&c);
        assert_eq!(o.len(), 1);
        assert_strictly_equal(&c, &o);
    }

    #[test]
    fn rz_two_pi_is_kept() {
        // Rz(2π) = −I: a global phase, physical once controlled — must stay.
        let mut c = Circuit::new(1);
        c.rz(2.0 * std::f64::consts::PI, 0);
        assert_eq!(remove_identities(&c).len(), 1);
    }

    #[test]
    fn adjacent_self_inverse_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cx(0, 1).cx(0, 1).x(1).x(1);
        assert!(cancel_inverse_pairs(&c).is_empty());
    }

    #[test]
    fn cancellation_cascades() {
        // h x x h — inner pair cancels, exposing the outer pair.
        let mut c = Circuit::new(1);
        c.h(0).x(0).x(0).h(0);
        assert!(cancel_inverse_pairs(&c).is_empty());
    }

    #[test]
    fn interleaved_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let o = cancel_inverse_pairs(&c);
        assert_eq!(o.len(), 3);
        assert_strictly_equal(&c, &o);
    }

    #[test]
    fn disjoint_gate_does_not_block() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).h(0);
        let o = cancel_inverse_pairs(&c);
        assert_eq!(o.len(), 1);
        assert_strictly_equal(&c, &o);
    }

    #[test]
    fn parameterized_inverses_cancel() {
        let mut c = Circuit::new(2);
        c.rz(0.7, 0).rz(-0.7, 0).crz(1.1, 0, 1).crz(-1.1, 0, 1);
        assert!(cancel_inverse_pairs(&c).is_empty());
    }

    #[test]
    fn rotations_merge() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).rz(0.4, 0);
        let o = merge_rotations(&c);
        assert_eq!(o.len(), 1);
        match o.gates()[0].kind() {
            GateKind::Rz(t) => assert!(qnum::approx::approx_eq(*t, 0.7)),
            k => panic!("{k:?}"),
        }
        assert_strictly_equal(&c, &o);
    }

    #[test]
    fn merged_rotation_vanishing_to_identity_is_dropped() {
        let mut c = Circuit::new(1);
        c.rx(1.0, 0).rx(-1.0, 0);
        assert!(merge_rotations(&c).is_empty());
    }

    #[test]
    fn merge_respects_controls() {
        let mut c = Circuit::new(2);
        c.crz(0.2, 0, 1).rz(0.3, 1);
        let o = merge_rotations(&c);
        assert_eq!(o.len(), 2, "controlled and plain rotations must not merge");
    }

    #[test]
    fn phase_merge_wraps_mod_2pi() {
        let mut c = Circuit::new(1);
        c.p(std::f64::consts::PI, 0).p(std::f64::consts::PI, 0);
        assert!(merge_rotations(&c).is_empty());
        assert_strictly_equal(&c, &merge_rotations(&c));
    }

    #[test]
    fn h_cx_h_becomes_cz() {
        let mut c = Circuit::new(2);
        c.h(1).cx(0, 1).h(1);
        let o = rewrite_h_cx_h(&c);
        assert_eq!(o.len(), 1);
        assert_eq!(o.gates()[0].to_string(), "cz q[0], q[1]");
        assert_strictly_equal(&c, &o);
    }

    #[test]
    fn h_on_control_is_not_rewritten() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let o = rewrite_h_cx_h(&c);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn commutation_rules_are_sound() {
        use crate::dense;
        // Each claimed-commuting pair must truly commute as matrices.
        let pairs: Vec<(Gate, Gate)> = vec![
            (
                Gate::single(GateKind::Rz(0.3), 0),
                Gate::controlled(GateKind::Phase(0.4), vec![0], 1),
            ),
            (
                Gate::controlled(GateKind::X, vec![0], 1),
                Gate::controlled(GateKind::X, vec![0], 2),
            ),
            (
                Gate::controlled(GateKind::X, vec![0], 2),
                Gate::controlled(GateKind::X, vec![1], 2),
            ),
            (
                Gate::single(GateKind::Rx(0.7), 1),
                Gate::controlled(GateKind::X, vec![0], 1),
            ),
            (
                Gate::single(GateKind::T, 0),
                Gate::controlled(GateKind::X, vec![0], 1),
            ),
            (
                Gate::single(GateKind::X, 2),
                Gate::controlled(GateKind::X, vec![0, 1], 2),
            ),
        ];
        for (a, b) in pairs {
            assert!(gates_commute(&a, &b), "{a} vs {b} should be accepted");
            let mut ab = Circuit::new(3);
            ab.push(a.clone()).push(b.clone());
            let mut ba = Circuit::new(3);
            ba.push(b.clone()).push(a.clone());
            assert!(
                dense::unitary(&ab).approx_eq(&dense::unitary(&ba)),
                "{a} and {b} do not actually commute!"
            );
        }
        // And known non-commuting pairs must be rejected.
        let reject: Vec<(Gate, Gate)> = vec![
            (Gate::single(GateKind::H, 0), Gate::single(GateKind::T, 0)),
            (
                Gate::controlled(GateKind::X, vec![0], 1),
                Gate::controlled(GateKind::X, vec![1], 0),
            ),
            (
                Gate::single(GateKind::Z, 1),
                Gate::controlled(GateKind::X, vec![0], 1),
            ),
        ];
        for (a, b) in reject {
            assert!(!gates_commute(&a, &b), "{a} vs {b} must be rejected");
        }
    }

    #[test]
    fn commutation_cancellation_beats_plain_pass() {
        // CX(0,1) · T(0) · CX(0,1): the T sits on the control, so the CXs
        // cancel through it.
        let mut c = Circuit::new(2);
        c.cx(0, 1).t(0).cx(0, 1);
        assert_eq!(cancel_inverse_pairs(&c).len(), 3, "plain pass is blocked");
        let o = cancel_with_commutation(&c);
        assert_eq!(o.len(), 1);
        assert_eq!(o.gates()[0].to_string(), "t q[0]");
        assert_strictly_equal(&c, &o);
    }

    #[test]
    fn commutation_cancellation_preserves_random_circuits() {
        for seed in 0..6 {
            let c = crate::generators::random_clifford_t(4, 120, seed);
            let o = cancel_with_commutation(&c);
            assert!(o.len() <= c.len());
            assert_strictly_equal(&c, &o);
        }
    }

    #[test]
    fn commutation_cancellation_is_blocked_by_true_obstructions() {
        // H on the control does NOT commute with CX: no cancellation.
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0).cx(0, 1);
        let o = cancel_with_commutation(&c);
        assert_eq!(o.len(), 3);
        assert_strictly_equal(&c, &o);
    }

    #[test]
    fn fusion_preserves_unitary_exactly() {
        for seed in 0..5 {
            let c = crate::generators::random_clifford_t(4, 150, seed);
            let fused = fuse_single_qubit_runs(&c);
            assert_strictly_equal(&c, &fused);
            assert!(fused.len() <= c.len());
        }
    }

    #[test]
    fn fusion_collapses_rotation_chains() {
        let mut c = Circuit::new(2);
        for i in 0..20 {
            c.rz(0.1 * (i as f64 + 1.0), 0);
            c.rx(0.05, 0);
        }
        c.cx(0, 1);
        let fused = fuse_single_qubit_runs(&c);
        assert!(
            fused.len() <= 6,
            "40 gates should fuse, got {}",
            fused.len()
        );
        assert_strictly_equal(&c, &fused);
    }

    #[test]
    fn fusion_respects_wire_blocking() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0); // the CX blocks fusing the two H gates
        let fused = fuse_single_qubit_runs(&c);
        assert_eq!(fused.len(), 3);
        assert_strictly_equal(&c, &fused);
    }

    #[test]
    fn fusion_keeps_short_runs_untouched() {
        let mut c = Circuit::new(1);
        c.h(0);
        let fused = fuse_single_qubit_runs(&c);
        assert_eq!(fused.gates()[0].to_string(), "h q[0]");
    }

    #[test]
    fn fusion_handles_trotter_circuits() {
        // Trotter runs between CXs are short (≤ 4 gates), so fusion may not
        // shrink them — but it must never grow the circuit or change it.
        let c = crate::generators::trotter_heisenberg(2, 2, 2, 0.13, 0.4);
        let fused = fuse_single_qubit_runs(&c);
        assert!(fused.len() <= c.len());
        assert_strictly_equal(&c, &fused);
    }

    #[test]
    fn full_pipeline_preserves_random_circuits() {
        for seed in 0..5 {
            let c = crate::generators::random_clifford_t(4, 120, seed);
            let o = optimize(&c);
            assert!(o.len() <= c.len());
            assert_strictly_equal(&c, &o);
        }
    }

    #[test]
    fn optimize_reaches_fixpoint_on_composed_inverse() {
        // G · G⁻¹ should collapse dramatically (fully, for this gate set).
        let mut g = Circuit::new(3);
        g.h(0).cx(0, 1).t(1).cx(1, 2).rz(0.4, 2).swap(0, 2);
        let mut gg = g.clone();
        gg.append(&g.inverse());
        let o = optimize(&gg);
        assert!(
            o.is_empty(),
            "expected full cancellation, got {} gates",
            o.len()
        );
    }
}
