// 2-qubit Grover (one iteration) using a user-defined gate
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
gate diffuse a, b { h a; h b; x a; x b; cz a, b; x a; x b; h a; h b; }
h q[0];
h q[1];
cz q[0], q[1];
diffuse q[0], q[1];
