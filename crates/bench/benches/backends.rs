//! Ablation: statevector vs decision-diagram simulation backends
//! (design-choice 1 of DESIGN.md).
//!
//! Statevector simulation is `O(2ⁿ)` regardless of structure; DD simulation
//! is exponentially compact on structured states (GHZ, QFT-of-basis) but
//! can degrade on unstructured ones (supremacy-style).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcec::backend::{SimBackend, StatevectorBackend};
use qcec::Stimulus;
use qcirc::generators;
use qsim::Simulator;

fn bench_structured_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_structured");
    for n in [12usize, 16] {
        let ghz = generators::ghz(n);
        group.bench_with_input(BenchmarkId::new("statevector_ghz", n), &ghz, |b, circ| {
            let sim = Simulator::new();
            b.iter(|| sim.run_basis(circ, 0));
        });
        group.bench_with_input(BenchmarkId::new("dd_ghz", n), &ghz, |b, circ| {
            b.iter_batched(
                || qdd::Package::new(circ.n_qubits()),
                |mut p| p.apply_to_basis(circ, 0).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
        let qft = generators::qft(n, false);
        group.bench_with_input(BenchmarkId::new("statevector_qft", n), &qft, |b, circ| {
            let sim = Simulator::new();
            b.iter(|| sim.run_basis(circ, 1));
        });
        group.bench_with_input(BenchmarkId::new("dd_qft", n), &qft, |b, circ| {
            b.iter_batched(
                || qdd::Package::new(circ.n_qubits()),
                |mut p| p.apply_to_basis(circ, 1).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_unstructured_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_unstructured");
    group.sample_size(10);
    let sup = generators::supremacy_2d(3, 4, 8, 7);
    group.bench_function("statevector_supremacy_3x4", |b| {
        let sim = Simulator::new();
        b.iter(|| sim.run_basis(&sup, 0));
    });
    group.bench_function("dd_supremacy_3x4", |b| {
        b.iter_batched(
            || qdd::Package::new(sup.n_qubits()),
            |mut p| p.apply_to_basis(&sup, 0).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The flow-level probe (`SimBackend::probe`): one full equivalence probe —
/// stimulus preparation plus both circuit passes plus the overlap — per
/// backend, on the structured register family the campaign's `adder 16`
/// fixture uses. This is the number EXPERIMENTS.md's backend table records.
fn bench_probe_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_probe");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        // cuccaro_adder(k) acts on 2k + 2 qubits.
        let adder = generators::cuccaro_adder((n - 2) / 2);
        let optimized = qcirc::optimize::optimize(&adder);
        let stimulus = Stimulus::Basis(1);
        group.bench_with_input(BenchmarkId::new("sv_adder", n), &adder, |b, g| {
            let backend = StatevectorBackend::new();
            let mut ws = backend.workspace(g.n_qubits());
            b.iter(|| backend.probe(g, &optimized, &stimulus, &mut ws).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("dd_adder", n), &adder, |b, g| {
            let backend = qdd::DdBackend::new();
            let mut ws = SimBackend::workspace(&backend, g.n_qubits());
            b.iter(|| SimBackend::probe(&backend, g, &optimized, &stimulus, &mut ws).unwrap());
        });
    }
    group.finish();
}

/// The stabilizer engine's headline: a Clifford-only probe is `O(n²)` per
/// gate in the tableau while the dense path is `O(2ⁿ)` and the DD's size
/// tracks the state's structure. Clifford-dominated Cuccaro-shaped adders
/// ([`generators::clifford_adder`]) at n = 16, 24, 32 qubits:
///
/// * `stab` runs at every width under both a basis stimulus and a random
///   stabilizer stimulus (the prefix is Clifford, so the whole probe
///   stays on the tableau path);
/// * `dd` gets the basis stimulus — its best case — and is only benched
///   to n = 24: at n = 32 the adder's diagram overflows the package;
/// * `sv` is only benched at n = 16: two dense 2²⁴ buffers are already
///   256 MiB, and 2³² cannot be allocated at all.
fn bench_stab_probe(c: &mut Criterion) {
    use qcec::StabBackend;
    use rand::{rngs::StdRng, SeedableRng};
    let mut group = c.benchmark_group("backend_stab");
    group.sample_size(10);
    for n in [16usize, 24, 32] {
        // clifford_adder(k) acts on 2k + 2 qubits.
        let adder = generators::clifford_adder((n - 2) / 2);
        let optimized = qcirc::optimize::optimize(&adder);
        let basis = Stimulus::Basis(1);
        let stab_stim = Stimulus::Stabilizer(qstab::random_stabilizer_circuit(
            n,
            &mut StdRng::seed_from_u64(n as u64),
        ));
        group.bench_with_input(BenchmarkId::new("stab_basis", n), &adder, |b, g| {
            let backend = StabBackend::new();
            let mut ws = backend.workspace(g.n_qubits());
            b.iter(|| backend.probe(g, &optimized, &basis, &mut ws).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("stab_stabilizer", n), &adder, |b, g| {
            let backend = StabBackend::new();
            let mut ws = backend.workspace(g.n_qubits());
            b.iter(|| backend.probe(g, &optimized, &stab_stim, &mut ws).unwrap());
        });
        if n <= 24 {
            group.bench_with_input(BenchmarkId::new("dd_basis", n), &adder, |b, g| {
                let backend = qdd::DdBackend::new();
                let mut ws = SimBackend::workspace(&backend, g.n_qubits());
                b.iter(|| SimBackend::probe(&backend, g, &optimized, &basis, &mut ws).unwrap());
            });
        }
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("sv_basis", n), &adder, |b, g| {
                let backend = StatevectorBackend::new();
                let mut ws = backend.workspace(g.n_qubits());
                b.iter(|| backend.probe(g, &optimized, &basis, &mut ws).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_threaded_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_threads");
    group.sample_size(10);
    let circ = generators::qft(20, false);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("qft20", threads),
            &threads,
            |b, &threads| {
                let sim = Simulator::with_threads(threads);
                b.iter(|| sim.run_basis(&circ, 3));
            },
        );
    }
    group.finish();
}

/// The tensor-network engine past the dense wall: one full equivalence
/// probe per width on the GHZ ladder (bond dimension 2, so the default χ
/// runs exactly) plus a T layer that keeps the pair non-Clifford — the
/// workload neither the tableau fast path nor (past n ≈ 24) the dense
/// engines can take. `sv` is benched at n = 16 only as the dense anchor;
/// `mps` scales through n = 64 at memory `O(n · χ²)`.
fn bench_mps_probe(c: &mut Criterion) {
    use qcec::MpsBackend;
    let mut group = c.benchmark_group("backend_mps");
    group.sample_size(10);
    for n in [16usize, 32, 48, 64] {
        let mut ghz = generators::ghz(n);
        ghz.t(n - 1);
        let optimized = qcirc::optimize::optimize(&ghz);
        let stimulus = Stimulus::Basis(1);
        group.bench_with_input(BenchmarkId::new("mps_ghz_t", n), &ghz, |b, g| {
            let backend = MpsBackend::new(qmpo::DEFAULT_CHI_MAX);
            b.iter(|| backend.probe(g, &optimized, &stimulus, &mut ()).unwrap());
        });
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("sv_ghz_t", n), &ghz, |b, g| {
                let backend = StatevectorBackend::new();
                let mut ws = backend.workspace(g.n_qubits());
                b.iter(|| backend.probe(g, &optimized, &stimulus, &mut ws).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_structured_circuits,
    bench_unstructured_circuits,
    bench_probe_backends,
    bench_stab_probe,
    bench_mps_probe,
    bench_threaded_statevector
);
criterion_main!(benches);
