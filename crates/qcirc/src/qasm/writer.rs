//! OpenQASM 2.0 serialization of circuits.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// Renders a circuit as OpenQASM 2.0 source text.
///
/// Gates with more than two controls (and controlled SWAPs beyond Fredkin)
/// have no `qelib1` spelling; they are emitted through an inline helper
/// `gate` definition so the output remains valid, self-contained QASM. The
/// output round-trips through [`crate::qasm::parse`].
///
/// # Examples
///
/// ```
/// use qcirc::{qasm, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let src = qasm::write(&c);
/// let back = qasm::parse(&src).expect("writer output must parse");
/// assert_eq!(back.len(), 2);
/// ```
#[must_use]
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    if !circuit.name().is_empty() {
        let _ = writeln!(out, "// circuit: {}", circuit.name());
    }
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    // Multi-controlled gates need helper definitions; collect which arities
    // appear and emit recursive (ancilla-free, exponential) helper gates —
    // fine for serialization purposes, the parser expands them right back.
    let max_arity = circuit
        .gates()
        .iter()
        .filter(|g| *g.kind() == GateKind::X)
        .map(|g| g.controls().len())
        .max()
        .unwrap_or(0);
    // Helper bodies recurse on smaller arities, so emit every arity from 3
    // up to the largest one used.
    for arity in 3..=max_arity {
        emit_mcx_helper(&mut out, arity);
    }
    for gate in circuit.gates() {
        match render_gate(gate) {
            Some(line) => {
                let _ = writeln!(out, "{line}");
            }
            None => {
                // No standard spelling (e.g. doubly-controlled rotations,
                // multi-controlled SWAP): emit the exact elementary
                // decomposition instead.
                let mut lowered = Vec::new();
                crate::decompose::lower_gate_to_elementary(gate, &mut lowered);
                let _ = writeln!(out, "// lowered: {gate}");
                for g in lowered {
                    let line = render_gate(&g).expect("elementary gates always render");
                    let _ = writeln!(out, "{line}");
                }
            }
        }
    }
    out
}

/// Emits an ancilla-free multi-controlled-X helper definition `mcx<k>` as
/// `H(t) · C^k P(π) · H(t)`, with the multi-controlled phase expanded by the
/// exact textbook V–V† recursion.
fn emit_mcx_helper(out: &mut String, arity: usize) {
    let controls: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
    let _ = writeln!(out, "gate mcx{arity} {}, t\n{{", controls.join(", "));
    let _ = writeln!(out, "  h t;");
    emit_mcp(out, &controls, "t", 1.0);
    let _ = writeln!(out, "  h t;");
    out.push_str("}\n");
}

/// Recursively emits a multi-controlled phase `C^k P(π·frac)` on `target`:
///
/// `C^k P(θ) = CP(θ/2)(c_k, t) · C^{k-1}X(…, c_k) · CP(−θ/2)(c_k, t)
///            · C^{k-1}X(…, c_k) · C^{k-1}P(θ/2)(…, t)`
fn emit_mcp(out: &mut String, controls: &[String], target: &str, frac: f64) {
    match controls {
        [] => {
            let _ = writeln!(out, "  p(pi*{frac}) {target};");
        }
        [c] => {
            let _ = writeln!(out, "  cp(pi*{frac}) {c}, {target};");
        }
        _ => {
            let (last, rest) = controls.split_last().expect("len >= 2");
            let _ = writeln!(out, "  cp(pi*{}) {last}, {target};", frac / 2.0);
            emit_mcx_call(out, rest, last);
            let _ = writeln!(out, "  cp(pi*({})) {last}, {target};", -frac / 2.0);
            emit_mcx_call(out, rest, last);
            emit_mcp(out, rest, target, frac / 2.0);
        }
    }
}

/// Emits a multi-controlled X with the appropriate spelling for its arity.
fn emit_mcx_call(out: &mut String, controls: &[String], target: &str) {
    match controls.len() {
        0 => {
            let _ = writeln!(out, "  x {target};");
        }
        1 => {
            let _ = writeln!(out, "  cx {}, {target};", controls[0]);
        }
        2 => {
            let _ = writeln!(out, "  ccx {}, {}, {target};", controls[0], controls[1]);
        }
        k => {
            // Smaller helper — emitted before this one by `write`.
            let _ = writeln!(out, "  mcx{k} {}, {target};", controls.join(", "));
        }
    }
}

/// Renders one gate, or `None` when it has no standard QASM spelling (the
/// caller then serializes an elementary decomposition).
fn render_gate(gate: &Gate) -> Option<String> {
    let q = |i: usize| format!("q[{i}]");
    let qubits: Vec<String> = gate.qubits().map(q).collect();
    let operand_list = qubits.join(", ");
    let params = gate.kind().params();
    let param_list = if params.is_empty() {
        String::new()
    } else {
        let rendered: Vec<String> = params.iter().map(|p| format!("{p:?}")).collect();
        format!("({})", rendered.join(","))
    };
    let name = match (gate.kind(), gate.controls().len()) {
        (GateKind::Swap, 0) => "swap".to_string(),
        (GateKind::Swap, 1) => "cswap".to_string(),
        (GateKind::Swap, _) => return None,
        (k, 0) => k.mnemonic().to_string(),
        (GateKind::X, 1) => "cx".to_string(),
        (GateKind::X, 2) => "ccx".to_string(),
        (GateKind::X, c) => format!("mcx{c}"),
        (GateKind::Y, 1) => "cy".to_string(),
        (GateKind::Z, 1) => "cz".to_string(),
        (GateKind::Z, 2) => "ccz".to_string(),
        (GateKind::H, 1) => "ch".to_string(),
        (GateKind::Rz(_), 1) => "crz".to_string(),
        (GateKind::Phase(_), 1) => "cp".to_string(),
        _ => return None,
    };
    Some(format!("{name}{param_list} {operand_list};"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm::parse;

    #[test]
    fn roundtrip_simple_circuit() {
        let mut c = Circuit::with_name(3, "demo");
        c.h(0)
            .cx(0, 1)
            .ccx(0, 1, 2)
            .swap(1, 2)
            .rz(0.5, 0)
            .cp(0.25, 0, 2);
        let src = write(&c);
        let back = parse(&src).expect("roundtrip parse");
        assert_eq!(back.n_qubits(), 3);
        assert_eq!(back.len(), c.len());
        for (a, b) in c.gates().iter().zip(back.gates()) {
            assert!(a.approx_eq(b), "{a} != {b}");
        }
    }

    #[test]
    fn roundtrip_preserves_parameters_exactly() {
        let mut c = Circuit::new(1);
        c.rz(std::f64::consts::PI / 3.0, 0).u3(0.1, -0.2, 0.3, 0);
        let back = parse(&write(&c)).unwrap();
        for (a, b) in c.gates().iter().zip(back.gates()) {
            assert!(a.approx_eq(b));
        }
    }

    #[test]
    fn header_and_register_present() {
        let mut c = Circuit::new(2);
        c.x(0);
        let src = write(&c);
        assert!(src.starts_with("OPENQASM 2.0;"));
        assert!(src.contains("qreg q[2];"));
        assert!(src.contains("x q[0];"));
    }

    #[test]
    fn unsupported_spellings_are_lowered_equivalently() {
        use crate::gate::{Gate, GateKind};
        // Controlled-U3, doubly-controlled SWAP, controlled-Ry: none have a
        // qelib1 spelling; the writer must lower them exactly.
        let mut c = Circuit::new(4);
        c.push(Gate::controlled(GateKind::U3(0.4, 0.2, -0.9), vec![0], 1));
        c.push(Gate::controlled_swap(vec![0, 1], 2, 3));
        c.push(Gate::controlled(GateKind::Ry(0.7), vec![3], 0));
        let src = write(&c);
        let back = parse(&src).expect("lowered output must parse");
        assert!(crate::dense::unitary(&back).approx_eq(&crate::dense::unitary(&c)));
    }

    #[test]
    fn mcx_helper_emitted_and_parses() {
        let mut c = Circuit::new(5);
        c.mcx(vec![0, 1, 2, 3], 4);
        let src = write(&c);
        assert!(src.contains("gate mcx4"));
        let back = parse(&src).expect("mcx output must parse");
        // The helper expands into elementary gates — count must be > 1.
        assert!(back.len() > 1);
        assert_eq!(back.n_qubits(), 5);
    }
}
