//! Tolerance-aware floating point comparison.
//!
//! Quantum EDA tools compare amplitudes and matrix entries up to a numerical
//! tolerance: gate matrices are exact up to rounding, but long products of
//! them accumulate error. Decision-diagram packages go further and *intern*
//! complex values within a tolerance bucket (see `qdd::ComplexTable`), which
//! requires a single, consistent notion of "equal enough" across the whole
//! workspace. This module is that single source of truth.
//!
//! # Examples
//!
//! ```
//! use qnum::approx::{approx_eq, approx_zero, DEFAULT_TOLERANCE};
//!
//! assert!(approx_eq(0.1 + 0.2, 0.3));
//! assert!(approx_zero(1e-14));
//! assert!(DEFAULT_TOLERANCE > 0.0);
//! ```

/// Default absolute tolerance used across the workspace.
///
/// The value mirrors the default of QMDD packages (≈`1e-10`): tight enough
/// that distinct gate-matrix entries never alias, loose enough to absorb the
/// rounding from products of tens of thousands of gates.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// Returns `true` if `a` and `b` differ by at most [`DEFAULT_TOLERANCE`].
///
/// The comparison is *absolute*, not relative: amplitudes are bounded by 1 in
/// magnitude, so a relative epsilon would be needlessly permissive near zero
/// (exactly where DD edge weights must be distinguished from true zeros).
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_with(a, b, DEFAULT_TOLERANCE)
}

/// Returns `true` if `a` and `b` differ by at most `tolerance`.
#[inline]
#[must_use]
pub fn approx_eq_with(a: f64, b: f64, tolerance: f64) -> bool {
    (a - b).abs() <= tolerance
}

/// Returns `true` if `a` is within [`DEFAULT_TOLERANCE`] of zero.
#[inline]
#[must_use]
pub fn approx_zero(a: f64) -> bool {
    a.abs() <= DEFAULT_TOLERANCE
}

/// Returns `true` if `a` is within [`DEFAULT_TOLERANCE`] of one.
#[inline]
#[must_use]
pub fn approx_one(a: f64) -> bool {
    approx_eq(a, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_are_equal() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(-3.5, -3.5));
    }

    #[test]
    fn rounding_noise_is_absorbed() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_eq(1.0 / 3.0 * 3.0, 1.0));
    }

    #[test]
    fn distinct_amplitudes_are_distinguished() {
        // 1/√2 vs 1/2 — the closest pair of "common" amplitudes.
        assert!(!approx_eq(std::f64::consts::FRAC_1_SQRT_2, 0.5));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn zero_and_one_helpers() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(-1e-12));
        assert!(!approx_zero(1e-6));
        assert!(approx_one(1.0 + 1e-12));
        assert!(!approx_one(0.999999));
    }

    #[test]
    fn custom_tolerance() {
        assert!(approx_eq_with(1.0, 1.01, 0.1));
        assert!(!approx_eq_with(1.0, 1.01, 0.001));
    }
}
