//! Rotation-angle canonicalization.
//!
//! Rotation gates are periodic: `Rz(θ)` equals `Rz(θ + 4π)` exactly and
//! `Rz(θ + 2π)` up to a global phase of −1. Transpiler passes that merge
//! rotations and the error injector that perturbs them both need a canonical
//! representative, otherwise textually different but functionally identical
//! circuits are produced.
//!
//! # Examples
//!
//! ```
//! use qnum::angle::{normalize, approx_eq_mod_2pi};
//! use std::f64::consts::PI;
//!
//! assert!((normalize(3.0 * PI) - (-PI)).abs() < 1e-12 || (normalize(3.0 * PI) - PI).abs() < 1e-12);
//! assert!(approx_eq_mod_2pi(0.1, 0.1 + 2.0 * PI));
//! ```

use std::f64::consts::PI;

const TWO_PI: f64 = 2.0 * PI;

/// Maps an angle into the canonical interval `(-π, π]`.
#[must_use]
pub fn normalize(theta: f64) -> f64 {
    let mut t = theta % TWO_PI;
    if t <= -PI {
        t += TWO_PI;
    } else if t > PI {
        t -= TWO_PI;
    }
    t
}

/// Returns `true` if two angles are congruent modulo 2π (within the
/// workspace tolerance).
#[must_use]
pub fn approx_eq_mod_2pi(a: f64, b: f64) -> bool {
    let d = normalize(a - b);
    crate::approx::approx_zero(d) || crate::approx::approx_eq(d.abs(), 0.0)
}

/// Returns `true` if an angle is congruent to zero modulo 2π — i.e. the
/// corresponding rotation is the identity up to global phase.
#[must_use]
pub fn approx_zero_mod_2pi(theta: f64) -> bool {
    approx_eq_mod_2pi(theta, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_is_idempotent_and_in_range() {
        for &t in &[0.0, 1.0, -1.0, PI, -PI, 10.0, -10.0, 100.0] {
            let n = normalize(t);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12, "out of range: {n}");
            assert!((normalize(n) - n).abs() < 1e-12);
        }
    }

    #[test]
    fn period_is_two_pi() {
        assert!(approx_eq_mod_2pi(0.5, 0.5 + TWO_PI));
        assert!(approx_eq_mod_2pi(-0.5, -0.5 - TWO_PI));
        assert!(!approx_eq_mod_2pi(0.5, 0.5 + PI));
    }

    #[test]
    fn zero_detection() {
        assert!(approx_zero_mod_2pi(0.0));
        assert!(approx_zero_mod_2pi(TWO_PI));
        assert!(approx_zero_mod_2pi(-TWO_PI));
        assert!(!approx_zero_mod_2pi(PI));
    }

    #[test]
    fn pi_maps_to_pi_not_minus_pi() {
        assert!((normalize(PI) - PI).abs() < 1e-12);
        assert!((normalize(-PI) - PI).abs() < 1e-12);
    }
}
