//! Structured instrumentation of a scheduled run.
//!
//! The scheduler reports what it does — stage boundaries, every finished
//! or abandoned simulation, cancellations — through a pluggable
//! [`EventSink`]. The default sink ([`NullSink`]) drops everything;
//! [`CollectingSink`] records everything for tests, benchmarks and
//! reports. Install a sink with
//! [`Config::with_event_sink`](crate::Config::with_event_sink).
//!
//! Events from concurrent workers arrive in completion order, not
//! stimulus order; only *counts* and per-event payloads are meaningful,
//! not inter-worker ordering.

use std::sync::Mutex;
use std::time::Duration;

use crate::config::BackendKind;
use crate::scheduler::cancel::CancelCause;

/// A stage of the equivalence checking flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The random basis-state simulation pool.
    Simulation,
    /// The complete decision-diagram check.
    Functional,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Simulation => write!(f, "simulation"),
            Stage::Functional => write!(f, "functional"),
        }
    }
}

/// One observation emitted by the scheduler (or the pipeline driver).
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// A stage began.
    StageStarted {
        /// Which stage.
        stage: Stage,
    },
    /// A stage ended (in portfolio mode the two stages overlap, so their
    /// wall times do not add up to the flow's total).
    StageFinished {
        /// Which stage.
        stage: Stage,
        /// Wall-clock duration of the stage.
        wall_time: Duration,
    },
    /// One simulation ran to completion.
    ///
    /// The stimulus itself is identified by `index`: stimuli are pre-drawn
    /// as a pure function of the configuration, so
    /// [`draw_stimuli`](crate::draw_stimuli) reproduces the full list —
    /// events stay allocation-free even for stabilizer stimuli that carry
    /// whole prefix circuits.
    SimulationFinished {
        /// Stimulus index into the pre-drawn list (0-based).
        index: usize,
        /// Wall-clock duration of this simulation.
        wall_time: Duration,
        /// The measured fidelity `|⟨uᵢ|uᵢ′⟩|²`.
        fidelity: f64,
        /// Which probe engine ran this simulation — lets timing consumers
        /// bucket probe time per backend (and the portfolio report name
        /// the engine that won).
        backend: BackendKind,
    },
    /// One simulation was abandoned (superseded by a counterexample at a
    /// lower stimulus index, or by a definitive functional verdict) —
    /// either skipped outright or cancelled mid-circuit.
    SimulationAborted {
        /// Stimulus index into the pre-drawn list (0-based).
        index: usize,
    },
    /// One claimed batch of stimuli finished probing — emitted by a
    /// scheduler worker after the per-member [`RunEvent::SimulationFinished`]
    /// events of the claim ([`Config::batch_size`](crate::Config::batch_size)
    /// members per claim; the tail claim may be short). Not emitted for
    /// claims that were wholly superseded or cancelled mid-batch.
    BatchFinished {
        /// First stimulus index of the claim (0-based).
        first: usize,
        /// Number of indices claimed by the `fetch_add`.
        claimed: usize,
        /// Number of stimuli probed to completion — `claimed` minus the
        /// members already superseded at claim time. The batch-fill ratio
        /// `probed / claimed` measures how much of the claimed work was
        /// still useful.
        probed: usize,
        /// Wall-clock duration of the whole batch probe.
        wall_time: Duration,
    },
    /// In-flight work was cancelled.
    Cancelled {
        /// What made the remaining work moot.
        cause: CancelCause,
    },
    /// [`BackendKind::Auto`] was resolved to a concrete engine, before any
    /// stage ran — emitted at most once per flow invocation (the paper's
    /// flow never switches engines mid-run).
    BackendSelected {
        /// The engine the selector chose from the register width and gate
        /// mix; never [`BackendKind::Auto`] itself.
        backend: BackendKind,
    },
    /// The pipeline driver finished checking one design-flow stage.
    PipelineStageChecked {
        /// Name of the checked artifact.
        name: String,
        /// Wall-clock duration of the whole check for this stage.
        wall_time: Duration,
    },
}

/// A consumer of [`RunEvent`]s.
///
/// Implementations must be thread-safe: concurrent workers record events
/// without coordination. They should also be *cheap* — `record` sits on
/// the per-simulation hot path.
pub trait EventSink: Send + Sync + std::fmt::Debug {
    /// Records one event.
    fn record(&self, event: RunEvent);
}

/// The default sink: discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: RunEvent) {}
}

/// A sink that stores every event in memory, for tests, benchmarks and
/// report generation.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use qcec::scheduler::{CollectingSink, EventSink};
/// use qcec::Config;
///
/// let sink = Arc::new(CollectingSink::new());
/// let config = Config::default()
///     .with_threads(2)
///     .with_event_sink(sink.clone());
/// let g = qcirc::generators::ghz(3);
/// qcec::check_equivalence(&g, &g, &config).unwrap();
/// assert!(sink.simulations_finished() > 0);
/// ```
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<RunEvent>>,
}

impl CollectingSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// A snapshot of all events recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn events(&self) -> Vec<RunEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Number of simulations that ran to completion.
    #[must_use]
    pub fn simulations_finished(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::SimulationFinished { .. }))
    }

    /// Number of simulations abandoned before completion.
    #[must_use]
    pub fn simulations_aborted(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::SimulationAborted { .. }))
    }

    /// Number of recorded cancellations.
    #[must_use]
    pub fn cancellations(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::Cancelled { .. }))
    }

    /// Number of completed stimulus batches.
    #[must_use]
    pub fn batches_finished(&self) -> usize {
        self.count(|e| matches!(e, RunEvent::BatchFinished { .. }))
    }

    fn count(&self, pred: impl Fn(&RunEvent) -> bool) -> usize {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| pred(e))
            .count()
    }
}

impl EventSink for CollectingSink {
    fn record(&self, event: RunEvent) {
        self.events.lock().unwrap().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_sink_counts_by_kind() {
        let sink = CollectingSink::new();
        sink.record(RunEvent::StageStarted {
            stage: Stage::Simulation,
        });
        sink.record(RunEvent::SimulationFinished {
            index: 0,
            wall_time: Duration::from_micros(5),
            fidelity: 1.0,
            backend: BackendKind::Statevector,
        });
        sink.record(RunEvent::SimulationAborted { index: 1 });
        sink.record(RunEvent::Cancelled {
            cause: CancelCause::SimulationCounterexample,
        });
        assert_eq!(sink.simulations_finished(), 1);
        assert_eq!(sink.simulations_aborted(), 1);
        assert_eq!(sink.cancellations(), 1);
        assert_eq!(sink.events().len(), 4);
    }

    #[test]
    fn null_sink_is_silent() {
        // Just exercise the impl; nothing observable.
        NullSink.record(RunEvent::StageStarted {
            stage: Stage::Functional,
        });
    }

    #[test]
    fn stage_displays() {
        assert_eq!(Stage::Simulation.to_string(), "simulation");
        assert_eq!(Stage::Functional.to_string(), "functional");
    }
}
