//! Graphviz (DOT) export and size metrics for decision diagrams.
//!
//! DD size is the paper's complexity currency: the complete equivalence
//! check dies exactly when these graphs explode. [`matrix_node_count`] /
//! [`vector_node_count`] measure the reachable size of one diagram (the
//! arenas hold *all* diagrams), and [`matrix_to_dot`] / [`vector_to_dot`]
//! render a diagram for inspection.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::edge::{MEdge, NodeId, VEdge};
use crate::package::Package;

/// Counts the nodes reachable from a matrix DD edge (excluding the
/// terminal).
#[must_use]
pub fn matrix_node_count(package: &Package, edge: MEdge) -> usize {
    let mut seen = HashSet::new();
    walk_m(package, edge, &mut seen);
    seen.len()
}

fn walk_m(package: &Package, edge: MEdge, seen: &mut HashSet<NodeId>) {
    if edge.node.is_terminal() || !seen.insert(edge.node) {
        return;
    }
    for child in package.mnode_children(edge.node) {
        walk_m(package, child, seen);
    }
}

/// Counts the nodes reachable from a vector DD edge (excluding the
/// terminal).
#[must_use]
pub fn vector_node_count(package: &Package, edge: VEdge) -> usize {
    let mut seen = HashSet::new();
    walk_v(package, edge, &mut seen);
    seen.len()
}

fn walk_v(package: &Package, edge: VEdge, seen: &mut HashSet<NodeId>) {
    if edge.node.is_terminal() || !seen.insert(edge.node) {
        return;
    }
    for child in package.vnode_children(edge.node) {
        walk_v(package, child, seen);
    }
}

/// Renders a matrix DD as a Graphviz digraph (`dot -Tsvg` friendly).
///
/// Nodes are labelled with their variable level; edges with their weight
/// (omitted when the weight is 1) and the block index `00/01/10/11`.
#[must_use]
pub fn matrix_to_dot(package: &Package, edge: MEdge, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=circle];");
    let _ = writeln!(out, "  root [shape=point];");
    let _ = writeln!(
        out,
        "  root -> {} [label=\"{}\"];",
        dot_id(edge.node),
        weight_label(package, edge.weight)
    );
    let mut seen = HashSet::new();
    emit_m(package, edge.node, &mut seen, &mut out);
    let _ = writeln!(out, "  terminal [shape=square, label=\"1\"];");
    out.push_str("}\n");
    out
}

fn emit_m(package: &Package, node: NodeId, seen: &mut HashSet<NodeId>, out: &mut String) {
    if node.is_terminal() || !seen.insert(node) {
        return;
    }
    let var = package.mnode_var(node);
    let _ = writeln!(out, "  {} [label=\"q{var}\"];", dot_id(node));
    for (i, child) in package.mnode_children(node).into_iter().enumerate() {
        if child.is_zero() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{:02b}{}\"];",
            dot_id(node),
            dot_id(child.node),
            i,
            weight_suffix(package, child.weight)
        );
        emit_m(package, child.node, seen, out);
    }
}

/// Renders a vector DD as a Graphviz digraph.
#[must_use]
pub fn vector_to_dot(package: &Package, edge: VEdge, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=circle];");
    let _ = writeln!(out, "  root [shape=point];");
    let _ = writeln!(
        out,
        "  root -> {} [label=\"{}\"];",
        dot_id(edge.node),
        weight_label(package, edge.weight)
    );
    let mut seen = HashSet::new();
    emit_v(package, edge.node, &mut seen, &mut out);
    let _ = writeln!(out, "  terminal [shape=square, label=\"1\"];");
    out.push_str("}\n");
    out
}

fn emit_v(package: &Package, node: NodeId, seen: &mut HashSet<NodeId>, out: &mut String) {
    if node.is_terminal() || !seen.insert(node) {
        return;
    }
    let var = package.vnode_var(node);
    let _ = writeln!(out, "  {} [label=\"q{var}\"];", dot_id(node));
    for (i, child) in package.vnode_children(node).into_iter().enumerate() {
        if child.is_zero() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}{}\"];",
            dot_id(node),
            dot_id(child.node),
            i,
            weight_suffix(package, child.weight)
        );
        emit_v(package, child.node, seen, out);
    }
}

fn dot_id(node: NodeId) -> String {
    if node.is_terminal() {
        "terminal".to_string()
    } else {
        format!("n{}", node.0)
    }
}

fn weight_label(package: &Package, w: crate::complex_table::Cx) -> String {
    let v = package.weight_value(w);
    format!("{v}")
}

fn weight_suffix(package: &Package, w: crate::complex_table::Cx) -> String {
    if w == crate::complex_table::Cx::ONE {
        String::new()
    } else {
        format!(" ·{}", package.weight_value(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn ghz_vector_dd_is_a_chain() {
        let mut p = Package::new(5);
        let v = p.apply_to_basis(&generators::ghz(5), 0).unwrap();
        // GHZ: two branches sharing structure — O(n) nodes.
        let count = vector_node_count(&p, v);
        assert!(count <= 2 * 5, "GHZ DD should be linear, got {count}");
    }

    #[test]
    fn identity_matrix_dd_is_a_chain() {
        let p = Package::new(6);
        assert_eq!(matrix_node_count(&p, p.identity_medge()), 6);
    }

    #[test]
    fn supremacy_state_dd_is_large() {
        let mut p = Package::new(12);
        let v = p
            .apply_to_basis(&generators::supremacy_2d(3, 4, 8, 1), 0)
            .unwrap();
        assert!(
            vector_node_count(&p, v) > 100,
            "unstructured states should have big DDs"
        );
    }

    #[test]
    fn dot_output_shape() {
        let mut p = Package::new(2);
        let v = p.apply_to_basis(&generators::bell(), 0).unwrap();
        let dot = vector_to_dot(&p, v, "bell");
        assert!(dot.starts_with("digraph \"bell\""));
        assert!(dot.contains("root ->"));
        assert!(dot.contains("terminal"));
        assert!(dot.trim_end().ends_with('}'));
        let u = p.circuit_medge(&generators::bell()).unwrap();
        let mdot = matrix_to_dot(&p, u, "bell_u");
        assert!(mdot.contains("q1"));
        assert!(mdot.contains("q0"));
    }
}
