//! Uniform sampling of random stabilizer states.
//!
//! A pure `n`-qubit stabilizer state is a maximal isotropic subspace of
//! `F₂^{2n}` (under the symplectic form) plus a sign per generator. The
//! sampler below draws the generators one at a time: at step `j` it picks a
//! uniform element of the symplectic orthocomplement of the generators
//! chosen so far and rejects it if it is linearly dependent on them
//! (acceptance probability ≥ 3/4 at every step). Because `Sp(2n, 2)` acts
//! transitively on sequences of independent pairwise-commuting Paulis, the
//! resulting subspace is uniform over all maximal isotropic subspaces; a
//! uniform sign per generator then makes the *state* uniform over all
//! `2ⁿ · ∏(2ⁱ + 1)` pure stabilizer states.

use rand::rngs::StdRng;
use rand::Rng;

use crate::tableau::PauliRow;

/// Draws the `n` stabilizer generators of a uniformly random pure
/// stabilizer state: independent, pairwise commuting, uniform ±1 signs.
///
/// The draw consumes a bounded-expected number of RNG words and is a pure
/// function of the RNG state, so seeding the RNG makes it reproducible.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_stabilizer_rows(n: usize, rng: &mut StdRng) -> Vec<PauliRow> {
    assert!(n > 0, "a stabilizer state needs at least one qubit");
    let dim = 2 * n;
    // Chosen generators as symplectic bit vectors `[x₀…x_{n−1} z₀…z_{n−1}]`,
    // plus a row-echelon copy for fast span-membership tests.
    let mut chosen: Vec<Vec<bool>> = Vec::with_capacity(n);
    let mut echelon: Vec<Vec<bool>> = Vec::new();
    while chosen.len() < n {
        // Basis of `{v : ⟨v, g⟩_sp = 0 for every chosen g}`. Commutation
        // with `g` is a *linear* constraint: the symplectic product pairs
        // x-bits with z-bits, so the constraint row is `g` with its halves
        // swapped.
        let constraints: Vec<Vec<bool>> = chosen.iter().map(|g| swap_halves(g, n)).collect();
        let ortho = kernel_basis(&constraints, dim);
        loop {
            // A uniform element of the orthocomplement: every basis vector
            // joins the combination with probability 1/2.
            let mut v = vec![false; dim];
            for basis_vec in &ortho {
                if rng.gen::<bool>() {
                    xor_into(&mut v, basis_vec);
                }
            }
            // Reject dependence on the chosen set (this includes v = 0).
            // span(chosen) ⊆ orthocomplement, so the acceptance probability
            // is `1 − 2^{j}/2^{2n−j} ≥ 3/4` with `j` generators chosen.
            if !in_span(&echelon, &v) {
                insert_into_echelon(&mut echelon, v.clone());
                chosen.push(v);
                break;
            }
        }
    }
    chosen
        .into_iter()
        .map(|bits| PauliRow {
            x: bits[..n].to_vec(),
            z: bits[n..].to_vec(),
            sign: rng.gen::<bool>(),
            imaginary: false,
        })
        .collect()
}

/// Draws a uniformly random stabilizer state and lowers it to a Clifford
/// preparation circuit: applying the result to `|0…0⟩` produces the state.
///
/// Convenience composition of [`random_stabilizer_rows`] and
/// [`crate::synthesize_state`].
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_stabilizer_circuit(n: usize, rng: &mut StdRng) -> qcirc::Circuit {
    crate::synthesize_state(&random_stabilizer_rows(n, rng))
}

/// `[x z] ↦ [z x]`: turns a generator into its commutation-constraint row.
fn swap_halves(bits: &[bool], n: usize) -> Vec<bool> {
    let mut out = Vec::with_capacity(2 * n);
    out.extend_from_slice(&bits[n..]);
    out.extend_from_slice(&bits[..n]);
    out
}

fn xor_into(acc: &mut [bool], other: &[bool]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a ^= b;
    }
}

fn leading(v: &[bool]) -> Option<usize> {
    v.iter().position(|&b| b)
}

/// Reduces `v` against echelon rows (each with a unique leading column) and
/// reports whether the residue vanishes.
fn in_span(echelon: &[Vec<bool>], v: &[bool]) -> bool {
    let mut v = v.to_vec();
    for row in echelon {
        let l = leading(row).expect("echelon rows are nonzero");
        if v[l] {
            xor_into(&mut v, row);
        }
    }
    leading(&v).is_none()
}

/// Adds an independent vector to the echelon, keeping every row's leading
/// column unique.
fn insert_into_echelon(echelon: &mut Vec<Vec<bool>>, mut v: Vec<bool>) {
    for row in echelon.iter() {
        let l = leading(row).expect("echelon rows are nonzero");
        if v[l] {
            xor_into(&mut v, row);
        }
    }
    debug_assert!(leading(&v).is_some(), "inserted vector was dependent");
    echelon.push(v);
}

/// Basis of the null space `{v : Mv = 0}` of a bit matrix given by rows.
fn kernel_basis(rows: &[Vec<bool>], dim: usize) -> Vec<Vec<bool>> {
    // Row-reduce a working copy, tracking pivot columns.
    let mut m: Vec<Vec<bool>> = rows.to_vec();
    let mut pivots: Vec<usize> = Vec::new();
    let mut rank = 0usize;
    for col in 0..dim {
        let Some(found) = (rank..m.len()).find(|&i| m[i][col]) else {
            continue;
        };
        m.swap(rank, found);
        for i in 0..m.len() {
            if i != rank && m[i][col] {
                let (row_i, row_r) = pick_two(&mut m, i, rank);
                xor_into(row_i, row_r);
            }
        }
        pivots.push(col);
        rank += 1;
    }
    // One basis vector per free column: set the free bit, back-fill the
    // pivot bits from the reduced rows.
    let mut basis = Vec::with_capacity(dim - rank);
    for free in 0..dim {
        if pivots.contains(&free) {
            continue;
        }
        let mut v = vec![false; dim];
        v[free] = true;
        for (r, &p) in pivots.iter().enumerate() {
            v[p] = m[r][free];
        }
        basis.push(v);
    }
    basis
}

fn pick_two<T>(slice: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = slice.split_at_mut(j);
        (&mut a[i], &mut b[0])
    } else {
        let (a, b) = slice.split_at_mut(i);
        (&mut b[0], &mut a[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn commute(a: &PauliRow, b: &PauliRow) -> bool {
        let mut acc = false;
        for q in 0..a.x.len() {
            acc ^= (a.x[q] & b.z[q]) ^ (a.z[q] & b.x[q]);
        }
        !acc
    }

    #[test]
    fn rows_are_independent_and_commuting() {
        for n in 1..=7 {
            for seed in 0..5u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let rows = random_stabilizer_rows(n, &mut rng);
                assert_eq!(rows.len(), n);
                let mut echelon: Vec<Vec<bool>> = Vec::new();
                for (i, a) in rows.iter().enumerate() {
                    assert!(!a.imaginary, "generators carry real signs");
                    for b in &rows[i + 1..] {
                        assert!(commute(a, b), "generators must commute (n={n} seed={seed})");
                    }
                    let mut bits = a.x.clone();
                    bits.extend_from_slice(&a.z);
                    assert!(
                        !in_span(&echelon, &bits),
                        "generators must be independent (n={n} seed={seed})"
                    );
                    insert_into_echelon(&mut echelon, bits);
                }
            }
        }
    }

    #[test]
    fn draws_are_reproducible_per_seed() {
        let a = random_stabilizer_rows(5, &mut StdRng::seed_from_u64(9));
        let b = random_stabilizer_rows(5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = random_stabilizer_rows(5, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c, "different seeds draw different states");
    }

    #[test]
    fn single_qubit_states_cover_all_six() {
        // 6 single-qubit stabilizer states: ±X, ±Y, ±Z eigenstates. With
        // enough seeds every one must appear.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rows = random_stabilizer_rows(1, &mut rng);
            seen.insert((rows[0].x[0], rows[0].z[0], rows[0].sign));
        }
        assert_eq!(seen.len(), 6, "sampler misses single-qubit states");
    }

    #[test]
    fn kernel_basis_spans_the_null_space() {
        // One constraint on F₂⁴: x₀ + x₂ = 0.
        let rows = vec![vec![true, false, true, false]];
        let basis = kernel_basis(&rows, 4);
        assert_eq!(basis.len(), 3);
        for v in &basis {
            assert!(!(v[0] ^ v[2]), "basis vector violates the constraint");
        }
    }
}
