//! Batched stimulus probes vs the one-at-a-time path (experiment BP).
//!
//! Measures the probe stage's core loop — prepare a basis stimulus, branch
//! it through `G` and `G'`, accumulate the overlap — at batch sizes
//! k = 1/4/16 on the cuccaro-adder fixture at n = 8/12/16 qubits. Each
//! measurement probes the *same* 16 stimuli, so the per-element wall time
//! is directly comparable across k: the k = 1 row is the historical
//! single-probe path, and larger k amortize gate decode and index
//! arithmetic across the arena's lanes. The acceptance bar for the
//! batched path is ≥ 1.5× probe throughput at k ≥ 8 on the n = 12 row
//! (`EXPERIMENTS.md` tracks the measured table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcirc::generators;
use qsim::{BatchWorkspace, ProbeWorkspace, Simulator};

/// Stimuli probed per measurement — every batch size divides it, so each
/// arm does identical total work.
const STIMULI: u64 = 16;

fn bench_batched_probe(c: &mut Criterion) {
    let sim = Simulator::new();
    // cuccaro_adder(k) spans 2k + 2 qubits: n = 8, 12 (the acceptance
    // fixture), 16.
    for width in [3usize, 5, 7] {
        let g = generators::cuccaro_adder(width);
        let g_prime = qcirc::optimize::optimize(&g);
        let n = g.n_qubits();
        // Every arm probes the same STIMULI inputs, so per-iteration wall
        // times are directly comparable across k without a throughput axis.
        let mut group = c.benchmark_group(format!("batched_probe_n{n}"));
        for k in [1usize, 4, 16] {
            group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
                if k == 1 {
                    let mut workspace = ProbeWorkspace::new(n);
                    b.iter(|| {
                        let mut acc = qnum::Complex::ZERO;
                        for basis in 0..STIMULI {
                            acc +=
                                sim.probe_stimulus_with(&g, &g_prime, None, basis, &mut workspace);
                        }
                        acc
                    });
                } else {
                    let mut workspace = BatchWorkspace::new(n);
                    b.iter(|| {
                        let mut acc = qnum::Complex::ZERO;
                        for chunk in 0..(STIMULI as usize / k) {
                            let stimuli: Vec<(u64, Option<&qcirc::Circuit>)> = (0..k)
                                .map(|lane| ((chunk * k + lane) as u64, None))
                                .collect();
                            let overlaps = sim
                                .probe_stimuli_batch_while(
                                    &g,
                                    &g_prime,
                                    &stimuli,
                                    &mut workspace,
                                    &|| true,
                                )
                                .expect("uncancellable batch");
                            for overlap in overlaps {
                                acc += *overlap;
                            }
                        }
                        acc
                    });
                }
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_batched_probe);
criterion_main!(benches);
