//! Tabular reporting of flow results — the shape of the paper's Table I —
//! plus per-stage timing summaries assembled from scheduler events.

use std::fmt;
use std::time::Duration;

use crate::outcome::{FlowResult, Outcome};
use crate::scheduler::{RunEvent, Stage};

/// One row of a benchmark report.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Benchmark name.
    pub name: String,
    /// Register size `n`.
    pub n_qubits: usize,
    /// `|G|`.
    pub g_len: usize,
    /// `|G'|`.
    pub g_prime_len: usize,
    /// The flow result.
    pub result: FlowResult,
}

/// A collection of rows renderable as a text table or CSV.
///
/// # Examples
///
/// ```
/// use qcec::report::Report;
///
/// # fn main() -> Result<(), qcec::FlowError> {
/// let g = qcirc::generators::ghz(3);
/// let result = qcec::check_equivalence_default(&g, &g)?;
/// let mut report = Report::new();
/// report.push("ghz3", 3, g.len(), g.len(), result);
/// assert!(report.to_csv().contains("ghz3"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Report {
    rows: Vec<ReportRow>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a row.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        n_qubits: usize,
        g_len: usize,
        g_prime_len: usize,
        result: FlowResult,
    ) {
        self.rows.push(ReportRow {
            name: name.into(),
            n_qubits,
            g_len,
            g_prime_len,
            result,
        });
    }

    /// The rows collected so far.
    #[must_use]
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }

    /// Renders the report as CSV with a header line
    /// (`name,n,gates_g,gates_g_prime,verdict,sims,t_sim_s,t_ec_s,counterexample`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "name,n,gates_g,gates_g_prime,verdict,sims,t_sim_s,t_ec_s,counterexample\n",
        );
        for row in &self.rows {
            let (verdict, witness) = verdict_and_witness(&row.result.outcome);
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.6},{:.6},{}\n",
                csv_escape(&row.name),
                row.n_qubits,
                row.g_len,
                row.g_prime_len,
                verdict,
                row.result.stats.simulations_run,
                row.result.stats.simulation_time.as_secs_f64(),
                row.result.stats.functional_time.as_secs_f64(),
                witness,
            ));
        }
        out
    }
}

impl fmt::Display for Report {
    /// Renders an aligned text table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>4} {:>8} {:>8} {:<22} {:>5} {:>10} {:>10}",
            "benchmark", "n", "|G|", "|G'|", "verdict", "sims", "t_sim [s]", "t_ec [s]"
        )?;
        for row in &self.rows {
            let (verdict, _) = verdict_and_witness(&row.result.outcome);
            writeln!(
                f,
                "{:<24} {:>4} {:>8} {:>8} {:<22} {:>5} {:>10.4} {:>10.4}",
                row.name,
                row.n_qubits,
                row.g_len,
                row.g_prime_len,
                verdict,
                row.result.stats.simulations_run,
                row.result.stats.simulation_time.as_secs_f64(),
                row.result.stats.functional_time.as_secs_f64(),
            )?;
        }
        Ok(())
    }
}

/// Per-stage effort totals distilled from a stream of scheduler
/// [`RunEvent`]s — what a bench binary prints next to its timings.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use qcec::report::StageTimings;
/// use qcec::scheduler::CollectingSink;
///
/// let sink = Arc::new(CollectingSink::new());
/// let config = qcec::Config::default()
///     .with_threads(2)
///     .with_event_sink(sink.clone());
/// let g = qcirc::generators::ghz(3);
/// qcec::check_equivalence(&g, &g, &config).unwrap();
/// let timings = StageTimings::from_events(&sink.events());
/// assert_eq!(timings.simulations_finished, 8); // 2³ ≤ r: full enumeration
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Total wall time of simulation stages.
    pub simulation_time: Duration,
    /// Total wall time of functional (complete-check) stages.
    pub functional_time: Duration,
    /// Simulations that ran to completion.
    pub simulations_finished: usize,
    /// Simulations abandoned after a cancellation.
    pub simulations_aborted: usize,
    /// Cancellations (first counterexample or first definitive verdict).
    pub cancellations: usize,
}

impl StageTimings {
    /// Accumulates the totals from recorded events.
    #[must_use]
    pub fn from_events(events: &[RunEvent]) -> Self {
        let mut t = StageTimings::default();
        for event in events {
            match event {
                RunEvent::StageFinished { stage, wall_time } => match stage {
                    Stage::Simulation => t.simulation_time += *wall_time,
                    Stage::Functional => t.functional_time += *wall_time,
                },
                RunEvent::SimulationFinished { .. } => t.simulations_finished += 1,
                RunEvent::SimulationAborted { .. } => t.simulations_aborted += 1,
                RunEvent::Cancelled { .. } => t.cancellations += 1,
                _ => {}
            }
        }
        t
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t_sim {:?}, t_ec {:?}, {} sims finished, {} aborted, {} cancellations",
            self.simulation_time,
            self.functional_time,
            self.simulations_finished,
            self.simulations_aborted,
            self.cancellations
        )
    }
}

fn verdict_and_witness(outcome: &Outcome) -> (&'static str, String) {
    match outcome {
        Outcome::Equivalent => ("equivalent", String::new()),
        Outcome::EquivalentUpToGlobalPhase { .. } => ("equivalent_up_to_phase", String::new()),
        Outcome::NotEquivalent {
            counterexample: Some(ce),
        } => ("not_equivalent", format!("|{}>", ce.basis)),
        Outcome::NotEquivalent {
            counterexample: None,
        } => ("not_equivalent", String::new()),
        Outcome::ProbablyEquivalent { .. } => ("probably_equivalent", String::new()),
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_equivalence_default;

    fn sample_report() -> Report {
        let g = qcirc::generators::ghz(3);
        let mut buggy = g.clone();
        buggy.x(1);
        let mut report = Report::new();
        report.push(
            "same",
            3,
            g.len(),
            g.len(),
            check_equivalence_default(&g, &g).unwrap(),
        );
        report.push(
            "buggy, with comma",
            3,
            g.len(),
            buggy.len(),
            check_equivalence_default(&g, &buggy).unwrap(),
        );
        report
    }

    #[test]
    fn csv_has_header_and_rows() {
        let report = sample_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("name,n,"));
        assert!(lines[1].contains("equivalent"));
        assert!(lines[2].contains("not_equivalent"));
        assert!(lines[2].starts_with("\"buggy, with comma\""));
    }

    #[test]
    fn text_table_aligns() {
        let report = sample_report();
        let text = report.to_string();
        assert!(text.contains("benchmark"));
        assert!(text.contains("not_equivalent"));
        assert_eq!(report.rows().len(), 2);
    }
}
