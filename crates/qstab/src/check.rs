//! Equivalence probing for Clifford circuit pairs.
//!
//! For Clifford circuits the paper's random-stimulus idea becomes a
//! *polynomial-time* procedure: each simulation is `O(m·n)` tableau updates
//! and the output comparison is exact stabilizer-group equality. This module
//! is the workspace's "future-work" extension of the flow — not part of the
//! DAC'20 paper, but a natural consequence of it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qcirc::Circuit;

use crate::convert::{run, NotCliffordError};
use crate::tableau::{PauliRow, Tableau};

/// The verdict of a Clifford equivalence probe.
#[derive(Debug, Clone, PartialEq)]
pub enum CliffordVerdict {
    /// A basis state was found on which the outputs differ, together with a
    /// stabilizer of the first output that the second violates.
    NotEquivalent {
        /// The distinguishing input basis state.
        basis: u64,
        /// Which probe run (1-based) found it.
        run: usize,
        /// A Pauli observable separating the two outputs.
        witness: PauliRow,
    },
    /// All probed basis states produced identical stabilizer states.
    ///
    /// Note: agreement on all `2ⁿ` basis states establishes equality of the
    /// *state maps* up to per-column global phases — like the paper's flow,
    /// a limited number of probes yields strong evidence, not proof.
    AllAgreed {
        /// Number of probes performed.
        runs: usize,
    },
}

/// Probes the equivalence of two *Clifford* circuits on `r` random basis
/// states (all of them when `2ⁿ ≤ r`).
///
/// # Errors
///
/// Returns [`NotCliffordError`] if either circuit contains a non-Clifford
/// gate — fall back to `qcec`'s statevector/DD flow in that case.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qstab::NotCliffordError> {
/// use qstab::{check_clifford_equivalence, CliffordVerdict};
///
/// let g = qcirc::generators::ghz(40); // far beyond statevector reach
/// let mapped = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(40));
/// let verdict = check_clifford_equivalence(&g, &mapped.circuit, 10, 7)?;
/// assert!(matches!(verdict, CliffordVerdict::AllAgreed { .. }));
/// # Ok(())
/// # }
/// ```
pub fn check_clifford_equivalence(
    g: &Circuit,
    g_prime: &Circuit,
    r: usize,
    seed: u64,
) -> Result<CliffordVerdict, NotCliffordError> {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let n = g.n_qubits();
    let mut rng = StdRng::seed_from_u64(seed);
    let bases: Vec<u64> = if n < 64 && (1u128 << n) <= r as u128 {
        (0..(1u64 << n)).collect()
    } else {
        (0..r)
            .map(|_| {
                if n >= 64 {
                    rng.gen()
                } else {
                    rng.gen_range(0..(1u64 << n))
                }
            })
            .collect()
    };
    for (i, &basis) in bases.iter().enumerate() {
        let a = run(g, basis)?;
        let b = run(g_prime, basis)?;
        if let Some(witness) = a.distinguishing_pauli(&b) {
            return Ok(CliffordVerdict::NotEquivalent {
                basis,
                run: i + 1,
                witness,
            });
        }
    }
    Ok(CliffordVerdict::AllAgreed { runs: bases.len() })
}

/// The magnitude `|⟨ψ_a|ψ_b⟩|` of the inner product of two stabilizer
/// states — deterministic, measurement-free, `O(n³)` bit operations.
///
/// The algorithm is the Aaronson–Gottesman inner-product routine: the
/// state-preparation synthesis of `a`'s canonical generators
/// ([`crate::synthesize_state`]) is inverted into a disentangler `D` with
/// `D|ψ_a⟩ = |0…0⟩` (up to global phase, which the magnitude ignores), so
/// `|⟨ψ_a|ψ_b⟩| = |⟨0…0|D|ψ_b⟩|`. For the transformed state the canonical
/// generators split into `k` X-carrying rows (the support is an affine
/// subspace with `2ᵏ` equal-magnitude amplitudes) and `n − k` Z-only rows
/// (its parity constraints): `|0…0⟩` lies in the support iff every Z-only
/// row carries a `+` sign, giving magnitude `2^{−k/2}`, and `0` otherwise.
///
/// Stabilizer overlap magnitudes are therefore always exactly `0` or
/// `2^{−k/2}`; in particular the result is `1.0` precisely when
/// [`Tableau::same_state`] holds.
///
/// # Panics
///
/// Panics if the qubit counts differ.
///
/// # Examples
///
/// ```
/// use qstab::{inner_product_magnitude, Tableau};
///
/// let zero = Tableau::new(1);
/// let mut plus = Tableau::new(1);
/// plus.h(0);
/// let m = inner_product_magnitude(&zero, &plus);
/// assert!((m - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// ```
#[must_use]
pub fn inner_product_magnitude(a: &Tableau, b: &Tableau) -> f64 {
    assert_eq!(a.n_qubits(), b.n_qubits(), "qubit counts differ");
    let disentangler = crate::synth::synthesize_state(&a.canonical_stabilizers()).inverse();
    let mut phi = b.clone();
    for gate in disentangler.gates() {
        crate::convert::apply_gate(&mut phi, gate).expect("synthesis emits Clifford gates only");
    }
    let mut k = 0i32;
    for row in phi.canonical_stabilizers() {
        if row.x.iter().any(|&bit| bit) {
            k += 1;
        } else if row.sign {
            // A violated parity constraint: |0…0⟩ is outside the support.
            return 0.0;
        }
    }
    // 2^{−k/2}, computed exactly (0.5ᵏ is a power of two, sqrt is exact
    // for even k and correctly rounded otherwise).
    (0.5f64).powi(k).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn mapped_clifford_circuits_agree_at_scale() {
        // 60 qubits: hopeless for statevectors, trivial for tableaus.
        let g = generators::ghz(60);
        let mapped = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::ring(60));
        let v = check_clifford_equivalence(&g, &mapped.circuit, 10, 1).unwrap();
        assert!(matches!(v, CliffordVerdict::AllAgreed { runs: 10 }));
    }

    #[test]
    fn injected_clifford_error_found_with_witness() {
        let g = generators::random_clifford_t(12, 200, 3);
        // Make it Clifford-only: replace T gates via optimizer? Instead
        // build a Clifford circuit directly.
        let g = clifford_only(&g);
        let mut buggy = g.clone();
        buggy.x(5);
        let v = check_clifford_equivalence(&g, &buggy, 10, 2).unwrap();
        match v {
            CliffordVerdict::NotEquivalent { run, witness, .. } => {
                assert_eq!(run, 1, "a Pauli error corrupts every stimulus");
                // Exercise the witness against the good tableau (the
                // verdict already proves separation; this is structural
                // sanity that the witness is well-formed).
                let t_good = run_on(&g, 0);
                let _ = t_good.stabilizes(&witness);
            }
            other => panic!("missed the error: {other:?}"),
        }
    }

    #[test]
    fn non_clifford_circuits_are_rejected() {
        let mut g = qcirc::Circuit::new(2);
        g.h(0).t(0);
        let e = check_clifford_equivalence(&g, &g, 5, 0).unwrap_err();
        assert!(e.to_string().contains("not a Clifford"));
    }

    #[test]
    fn quarter_turn_rotations_are_accepted() {
        use std::f64::consts::FRAC_PI_2;
        let mut g = qcirc::Circuit::new(2);
        g.rz(FRAC_PI_2, 0)
            .rx(-FRAC_PI_2, 1)
            .ry(FRAC_PI_2, 0)
            .cp(std::f64::consts::PI, 0, 1);
        let v = check_clifford_equivalence(&g, &g, 4, 0).unwrap();
        assert!(matches!(v, CliffordVerdict::AllAgreed { .. }));
    }

    #[test]
    fn small_registers_enumerate() {
        let g = generators::bell();
        let mut buggy = g.clone();
        buggy.z(1);
        let v = check_clifford_equivalence(&g, &buggy, 100, 0).unwrap();
        assert!(matches!(v, CliffordVerdict::NotEquivalent { .. }));
    }

    #[test]
    fn inner_product_hand_cases() {
        use std::f64::consts::FRAC_1_SQRT_2;
        let zero = crate::Tableau::new(1);
        let one = crate::Tableau::basis(1, 1);
        let mut plus = crate::Tableau::new(1);
        plus.h(0);
        let mut minus = plus.clone();
        minus.z_gate(0);
        assert_eq!(inner_product_magnitude(&zero, &zero), 1.0);
        assert_eq!(inner_product_magnitude(&zero, &one), 0.0);
        assert!((inner_product_magnitude(&zero, &plus) - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((inner_product_magnitude(&plus, &one) - FRAC_1_SQRT_2).abs() < 1e-12);
        assert_eq!(inner_product_magnitude(&plus, &minus), 0.0);
        // Bell vs |00⟩: magnitude 1/√2; Bell vs phase-flipped Bell: 0.
        let mut bell = crate::Tableau::new(2);
        bell.h(0);
        bell.cx(0, 1);
        let mut flipped = bell.clone();
        flipped.z_gate(1);
        let zz = crate::Tableau::new(2);
        assert!((inner_product_magnitude(&bell, &zz) - FRAC_1_SQRT_2).abs() < 1e-12);
        assert_eq!(inner_product_magnitude(&bell, &flipped), 0.0);
        // Symmetry.
        assert_eq!(
            inner_product_magnitude(&bell, &zz),
            inner_product_magnitude(&zz, &bell)
        );
    }

    #[test]
    fn inner_product_is_one_iff_same_state() {
        let g = generators::random_clifford_t(6, 80, 11);
        let g = clifford_only(&g);
        let mut buggy = g.clone();
        buggy.z(3);
        for basis in [0u64, 5, 63] {
            let a = run_on(&g, basis);
            let b = run_on(&buggy, basis);
            let m = inner_product_magnitude(&a, &b);
            assert_eq!(m == 1.0, a.same_state(&b), "basis {basis}: {m}");
            assert_eq!(inner_product_magnitude(&a, &a), 1.0);
        }
    }

    /// Strips non-Clifford gates (T/T†) out of a random Clifford+T circuit.
    fn clifford_only(c: &qcirc::Circuit) -> qcirc::Circuit {
        let mut out = qcirc::Circuit::new(c.n_qubits());
        for g in c.gates() {
            if crate::convert::is_clifford(&{
                let mut tmp = qcirc::Circuit::new(c.n_qubits());
                tmp.push(g.clone());
                tmp
            }) {
                out.push(g.clone());
            }
        }
        out
    }

    fn run_on(c: &qcirc::Circuit, basis: u64) -> crate::tableau::Tableau {
        crate::convert::run(c, basis).unwrap()
    }
}
