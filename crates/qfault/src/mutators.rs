//! The mutator library: one seeded, deterministic fault class each.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use qcirc::optimize::gates_commute;
use qcirc::{Circuit, Gate, GateKind};

use crate::mutation::{MutateError, Mutation, MutationKind};

/// A seeded circuit mutator: one compilation-flow fault class.
///
/// Implementations never panic on inapplicable circuits — they return a
/// [`MutateError`] naming the missing precondition — and they are pure
/// functions of `(circuit, rng state)`: the same circuit and seed always
/// produce the same mutated circuit and [`Mutation`] record.
pub trait Mutator: std::fmt::Debug + Send + Sync {
    /// The fault class this mutator injects.
    fn kind(&self) -> MutationKind;

    /// Injects one fault into a copy of `circuit`, choosing the site with
    /// the seeded `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`MutateError`] if the circuit has no applicable site.
    fn apply(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<(Circuit, Mutation), MutateError>;
}

/// Builds one mutator of every kind, ready for a campaign sweep.
/// `epsilon` parameterizes [`PerturbAngle`].
#[must_use]
pub fn registry(epsilon: f64) -> Vec<Box<dyn Mutator>> {
    MutationKind::ALL
        .iter()
        .map(|&kind| mutator_for(kind, epsilon))
        .collect()
}

/// Builds the mutator for one fault class. `epsilon` is only consulted by
/// [`MutationKind::PerturbAngle`].
#[must_use]
pub fn mutator_for(kind: MutationKind, epsilon: f64) -> Box<dyn Mutator> {
    match kind {
        MutationKind::RemoveGate => Box::new(RemoveGate),
        MutationKind::AddGate => Box::new(AddGate),
        MutationKind::RemoveControl => Box::new(RemoveControl),
        MutationKind::AddControl => Box::new(AddControl),
        MutationKind::SwapTargets => Box::new(SwapTargets),
        MutationKind::PerturbAngle => Box::new(PerturbAngle { epsilon }),
        MutationKind::SwapAdjacentGates => Box::new(SwapAdjacentGates),
        MutationKind::RelabelQubits => Box::new(RelabelQubits),
    }
}

fn fail(kind: MutationKind, reason: &str) -> MutateError {
    MutateError {
        kind,
        reason: reason.to_string(),
    }
}

/// Reassembles a gate from its parts, routing through the right
/// constructor for the kind/control combination.
fn rebuild(kind: GateKind, controls: Vec<usize>, targets: &[usize]) -> Gate {
    match (kind, controls.is_empty()) {
        (GateKind::Swap, true) => Gate::swap(targets[0], targets[1]),
        (GateKind::Swap, false) => Gate::controlled_swap(controls, targets[0], targets[1]),
        (k, true) => Gate::single(k, targets[0]),
        (k, false) => Gate::controlled(k, controls, targets[0]),
    }
}

fn buggy_copy(circuit: &Circuit) -> Circuit {
    let mut out = circuit.clone();
    out.set_name(format!("{}_faulty", circuit.name()));
    out
}

// ---------------------------------------------------------------------------

/// Removes one gate — a pass that silently drops an operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoveGate;

impl Mutator for RemoveGate {
    fn kind(&self) -> MutationKind {
        MutationKind::RemoveGate
    }

    fn apply(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<(Circuit, Mutation), MutateError> {
        if circuit.is_empty() {
            return Err(fail(self.kind(), "circuit is empty"));
        }
        let site = rng.gen_range(0..circuit.len());
        let mut out = buggy_copy(circuit);
        let removed = out.remove(site);
        Ok((
            out,
            Mutation {
                kind: self.kind(),
                site,
                params: vec![],
                description: format!("removed '{removed}'"),
            },
        ))
    }
}

/// Inserts one spurious gate — a pass that emits an extra operation.
/// Draws a single-qubit gate, or (on multi-qubit registers) a CX half of
/// the time.
#[derive(Debug, Clone, Copy, Default)]
pub struct AddGate;

impl Mutator for AddGate {
    fn kind(&self) -> MutationKind {
        MutationKind::AddGate
    }

    fn apply(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<(Circuit, Mutation), MutateError> {
        let site = rng.gen_range(0..=circuit.len());
        let n = circuit.n_qubits();
        let gate = if n >= 2 && rng.gen_bool(0.5) {
            let control = rng.gen_range(0..n);
            let target = loop {
                let t = rng.gen_range(0..n);
                if t != control {
                    break t;
                }
            };
            Gate::controlled(GateKind::X, vec![control], target)
        } else {
            let palette = [
                GateKind::X,
                GateKind::Y,
                GateKind::Z,
                GateKind::H,
                GateKind::S,
                GateKind::T,
                GateKind::Sx,
            ];
            let kind = *palette.choose(rng).expect("non-empty palette");
            Gate::single(kind, rng.gen_range(0..n))
        };
        let mut out = buggy_copy(circuit);
        let description = format!("inserted '{gate}'");
        out.insert(site, gate);
        Ok((
            out,
            Mutation {
                kind: self.kind(),
                site,
                params: vec![],
                description,
            },
        ))
    }
}

/// Drops one control line from a controlled gate — the gate then fires
/// unconditionally where it should have been guarded.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoveControl;

impl Mutator for RemoveControl {
    fn kind(&self) -> MutationKind {
        MutationKind::RemoveControl
    }

    fn apply(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<(Circuit, Mutation), MutateError> {
        let sites: Vec<usize> = (0..circuit.len())
            .filter(|&i| !circuit.gates()[i].controls().is_empty())
            .collect();
        let Some(&site) = sites.choose(rng) else {
            return Err(fail(self.kind(), "no controlled gates present"));
        };
        let old = circuit.gates()[site].clone();
        let mut controls = old.controls().to_vec();
        let dropped = controls.remove(rng.gen_range(0..controls.len()));
        let new = rebuild(*old.kind(), controls, old.targets());
        let mut out = buggy_copy(circuit);
        let description = format!("'{old}' → '{new}' (dropped control q[{dropped}])");
        out.replace(site, new);
        Ok((
            out,
            Mutation {
                kind: self.kind(),
                site,
                params: vec![dropped as f64],
                description,
            },
        ))
    }
}

/// Adds one spurious control line to a gate — the operation then fires
/// only when an unrelated qubit happens to be `|1⟩`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AddControl;

impl Mutator for AddControl {
    fn kind(&self) -> MutationKind {
        MutationKind::AddControl
    }

    fn apply(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<(Circuit, Mutation), MutateError> {
        let n = circuit.n_qubits();
        let sites: Vec<usize> = (0..circuit.len())
            .filter(|&i| circuit.gates()[i].width() < n)
            .collect();
        let Some(&site) = sites.choose(rng) else {
            return Err(fail(
                self.kind(),
                "every gate already touches the full register",
            ));
        };
        let old = circuit.gates()[site].clone();
        let free: Vec<usize> = (0..n).filter(|&q| old.qubits().all(|g| g != q)).collect();
        let added = *free.choose(rng).expect("width < n implies a free qubit");
        let mut controls = old.controls().to_vec();
        controls.push(added);
        let new = rebuild(*old.kind(), controls, old.targets());
        let mut out = buggy_copy(circuit);
        let description = format!("'{old}' → '{new}' (added control q[{added}])");
        out.replace(site, new);
        Ok((
            out,
            Mutation {
                kind: self.kind(),
                site,
                params: vec![added as f64],
                description,
            },
        ))
    }
}

/// Exchanges one control with a target on a controlled gate — the
/// generalized "CX pointing the wrong way" bug. On symmetric gates (CZ,
/// CP) this mutation is semantically benign; the campaign guard labels
/// those instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwapTargets;

impl Mutator for SwapTargets {
    fn kind(&self) -> MutationKind {
        MutationKind::SwapTargets
    }

    fn apply(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<(Circuit, Mutation), MutateError> {
        let sites: Vec<usize> = (0..circuit.len())
            .filter(|&i| !circuit.gates()[i].controls().is_empty())
            .collect();
        let Some(&site) = sites.choose(rng) else {
            return Err(fail(self.kind(), "no controlled gates present"));
        };
        let old = circuit.gates()[site].clone();
        let ci = rng.gen_range(0..old.controls().len());
        let ti = rng.gen_range(0..old.targets().len());
        let mut controls = old.controls().to_vec();
        let mut targets = old.targets().to_vec();
        std::mem::swap(&mut controls[ci], &mut targets[ti]);
        let new = rebuild(*old.kind(), controls, &targets);
        let mut out = buggy_copy(circuit);
        let description = format!("'{old}' → '{new}'");
        out.replace(site, new);
        Ok((
            out,
            Mutation {
                kind: self.kind(),
                site,
                params: vec![],
                description,
            },
        ))
    }
}

/// Offsets one rotation angle by `±ε` — calibration drift, a truncated
/// constant, a degree/radian mix-up scaled down.
#[derive(Debug, Clone, Copy)]
pub struct PerturbAngle {
    /// The magnitude of the injected offset (radians).
    pub epsilon: f64,
}

impl Default for PerturbAngle {
    fn default() -> Self {
        PerturbAngle { epsilon: 0.1 }
    }
}

impl Mutator for PerturbAngle {
    fn kind(&self) -> MutationKind {
        MutationKind::PerturbAngle
    }

    fn apply(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<(Circuit, Mutation), MutateError> {
        let sites: Vec<usize> = (0..circuit.len())
            .filter(|&i| circuit.gates()[i].kind().is_parameterized())
            .collect();
        let Some(&site) = sites.choose(rng) else {
            return Err(fail(self.kind(), "no parameterized gates present"));
        };
        let old = circuit.gates()[site].clone();
        let offset = if rng.gen_bool(0.5) {
            self.epsilon
        } else {
            -self.epsilon
        };
        let param_index = rng.gen_range(0..old.kind().params().len());
        let new_kind = perturb_param(old.kind(), param_index, offset);
        let new = rebuild(new_kind, old.controls().to_vec(), old.targets());
        let mut out = buggy_copy(circuit);
        let description = format!("'{old}' → '{new}'");
        out.replace(site, new);
        Ok((
            out,
            Mutation {
                kind: self.kind(),
                site,
                params: vec![offset, param_index as f64],
                description,
            },
        ))
    }
}

fn perturb_param(kind: &GateKind, index: usize, offset: f64) -> GateKind {
    match *kind {
        GateKind::Rx(t) => GateKind::Rx(t + offset),
        GateKind::Ry(t) => GateKind::Ry(t + offset),
        GateKind::Rz(t) => GateKind::Rz(t + offset),
        GateKind::Phase(l) => GateKind::Phase(l + offset),
        GateKind::U3(t, p, l) => match index {
            0 => GateKind::U3(t + offset, p, l),
            1 => GateKind::U3(t, p + offset, l),
            _ => GateKind::U3(t, p, l + offset),
        },
        other => other,
    }
}

/// Exchanges two adjacent gates that do *not* commute — a scheduling or
/// peephole pass that reordered operations it was not allowed to reorder.
/// Commuting neighbours are excluded by construction: exchanging them
/// would be a guaranteed no-op, not a fault.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwapAdjacentGates;

impl Mutator for SwapAdjacentGates {
    fn kind(&self) -> MutationKind {
        MutationKind::SwapAdjacentGates
    }

    fn apply(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<(Circuit, Mutation), MutateError> {
        let gates = circuit.gates();
        let sites: Vec<usize> = (0..circuit.len().saturating_sub(1))
            .filter(|&i| !gates_commute(&gates[i], &gates[i + 1]))
            .collect();
        let Some(&site) = sites.choose(rng) else {
            return Err(fail(self.kind(), "no adjacent non-commuting pair"));
        };
        let (a, b) = (gates[site].clone(), gates[site + 1].clone());
        let mut out = buggy_copy(circuit);
        let description = format!("exchanged '{a}' and '{b}'");
        out.replace(site, b);
        out.replace(site + 1, a);
        Ok((
            out,
            Mutation {
                kind: self.kind(),
                site,
                params: vec![],
                description,
            },
        ))
    }
}

/// Exchanges two qubit labels on every gate from a random index onward —
/// the tail of the circuit runs on a wrong qubit assignment, as if a SWAP
/// inserted by the mapper had been dropped (the paper's Example 6 bug
/// writ large).
#[derive(Debug, Clone, Copy, Default)]
pub struct RelabelQubits;

impl Mutator for RelabelQubits {
    fn kind(&self) -> MutationKind {
        MutationKind::RelabelQubits
    }

    fn apply(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<(Circuit, Mutation), MutateError> {
        if circuit.is_empty() {
            return Err(fail(self.kind(), "circuit is empty"));
        }
        if circuit.n_qubits() < 2 {
            return Err(fail(self.kind(), "needs at least 2 qubits"));
        }
        let site = rng.gen_range(0..circuit.len());
        // Anchor one side of the transposition on a qubit the gate at the
        // cut actually touches, so the suffix is guaranteed to change.
        let touched: Vec<usize> = circuit.gates()[site].qubits().collect();
        let a = *touched.choose(rng).expect("gates touch at least one qubit");
        let b = loop {
            let q = rng.gen_range(0..circuit.n_qubits());
            if q != a {
                break q;
            }
        };
        let swap = |q: usize| {
            if q == a {
                b
            } else if q == b {
                a
            } else {
                q
            }
        };
        let mut out = Circuit::with_name(circuit.n_qubits(), format!("{}_faulty", circuit.name()));
        for (i, g) in circuit.gates().iter().enumerate() {
            out.push(if i >= site { g.remap(swap) } else { g.clone() });
        }
        Ok((
            out,
            Mutation {
                kind: self.kind(),
                site,
                params: vec![a as f64, b as f64],
                description: format!("relabelled q[{a}] ↔ q[{b}] from gate {site} onward"),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A fixture with controlled gates, rotations, and non-commuting
    /// neighbours — every mutator applies.
    fn fixture() -> Circuit {
        let mut c = Circuit::with_name(4, "fixture");
        c.h(0).cx(0, 1).rz(0.7, 1).ccx(0, 1, 2).swap(2, 3).t(3);
        c
    }

    #[test]
    fn every_mutator_applies_to_the_fixture() {
        for mutator in registry(0.1) {
            let (mutated, record) = mutator
                .apply(&fixture(), &mut rng(5))
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(mutated.n_qubits(), 4, "{record}");
            assert!(!record.description.is_empty());
            assert_eq!(record.kind, mutator.kind());
        }
    }

    #[test]
    fn registry_covers_all_kinds_in_order() {
        let kinds: Vec<MutationKind> = registry(0.2).iter().map(|m| m.kind()).collect();
        assert_eq!(kinds, MutationKind::ALL.to_vec());
    }

    #[test]
    fn mutators_are_deterministic_per_seed() {
        for mutator in registry(0.1) {
            let a = mutator.apply(&fixture(), &mut rng(42)).unwrap();
            let b = mutator.apply(&fixture(), &mut rng(42)).unwrap();
            assert_eq!(a.0, b.0, "{:?} circuit differs", mutator.kind());
            assert_eq!(a.1, b.1, "{:?} record differs", mutator.kind());
        }
    }

    #[test]
    fn remove_gate_shrinks_add_gate_grows() {
        let c = fixture();
        let (removed, _) = RemoveGate.apply(&c, &mut rng(1)).unwrap();
        assert_eq!(removed.len(), c.len() - 1);
        let (grown, _) = AddGate.apply(&c, &mut rng(1)).unwrap();
        assert_eq!(grown.len(), c.len() + 1);
    }

    #[test]
    fn remove_control_reduces_width() {
        let c = fixture();
        let (mutated, record) = RemoveControl.apply(&c, &mut rng(3)).unwrap();
        let old = &c.gates()[record.site];
        let new = &mutated.gates()[record.site];
        assert_eq!(new.controls().len(), old.controls().len() - 1);
        assert_eq!(new.targets(), old.targets());
    }

    #[test]
    fn add_control_increases_width() {
        let c = fixture();
        let (mutated, record) = AddControl.apply(&c, &mut rng(3)).unwrap();
        let old = &c.gates()[record.site];
        let new = &mutated.gates()[record.site];
        assert_eq!(new.controls().len(), old.controls().len() + 1);
        assert_eq!(new.targets(), old.targets());
    }

    #[test]
    fn swap_targets_permutes_qubits_within_the_gate() {
        let c = fixture();
        let (mutated, record) = SwapTargets.apply(&c, &mut rng(9)).unwrap();
        let old = &c.gates()[record.site];
        let new = &mutated.gates()[record.site];
        let mut old_qs: Vec<usize> = old.qubits().collect();
        let mut new_qs: Vec<usize> = new.qubits().collect();
        old_qs.sort_unstable();
        new_qs.sort_unstable();
        assert_eq!(old_qs, new_qs, "qubit set must be preserved");
        assert_ne!(old, new, "control/target roles must change");
    }

    #[test]
    fn perturb_angle_moves_exactly_one_parameter() {
        let c = fixture();
        let m = PerturbAngle { epsilon: 0.25 };
        let (mutated, record) = m.apply(&c, &mut rng(2)).unwrap();
        let old = c.gates()[record.site].kind().params();
        let new = mutated.gates()[record.site].kind().params();
        let moved: Vec<usize> = (0..old.len())
            .filter(|&i| (old[i] - new[i]).abs() > 1e-12)
            .collect();
        assert_eq!(moved.len(), 1);
        assert!((old[moved[0]] - new[moved[0]]).abs() - 0.25 < 1e-12);
    }

    #[test]
    fn swap_adjacent_only_picks_non_commuting_pairs() {
        let c = fixture();
        for seed in 0..30 {
            let (mutated, record) = SwapAdjacentGates.apply(&c, &mut rng(seed)).unwrap();
            let i = record.site;
            assert!(!gates_commute(&c.gates()[i], &c.gates()[i + 1]));
            assert_eq!(&mutated.gates()[i], &c.gates()[i + 1]);
            assert_eq!(&mutated.gates()[i + 1], &c.gates()[i]);
        }
    }

    #[test]
    fn swap_adjacent_rejects_fully_commuting_circuits() {
        let mut c = Circuit::new(2);
        c.z(0).t(0).rz(0.3, 1); // all diagonal: everything commutes
        let e = SwapAdjacentGates.apply(&c, &mut rng(0)).unwrap_err();
        assert!(e.to_string().contains("non-commuting"));
    }

    #[test]
    fn relabel_changes_the_suffix_only() {
        let c = fixture();
        let (mutated, record) = RelabelQubits.apply(&c, &mut rng(11)).unwrap();
        assert_eq!(mutated.len(), c.len());
        for i in 0..record.site {
            assert_eq!(&mutated.gates()[i], &c.gates()[i]);
        }
        // The anchored gate at the cut must have changed.
        assert_ne!(&mutated.gates()[record.site], &c.gates()[record.site]);
    }

    #[test]
    fn inapplicable_sites_are_reported_not_panicked() {
        let mut bare = Circuit::new(1);
        bare.h(0);
        assert!(RemoveControl.apply(&bare, &mut rng(0)).is_err());
        assert!(SwapTargets.apply(&bare, &mut rng(0)).is_err());
        assert!(PerturbAngle::default().apply(&bare, &mut rng(0)).is_err());
        assert!(RelabelQubits.apply(&bare, &mut rng(0)).is_err());
        let empty = Circuit::new(2);
        assert!(RemoveGate.apply(&empty, &mut rng(0)).is_err());
        // AddGate applies even to an empty circuit.
        assert!(AddGate.apply(&empty, &mut rng(0)).is_ok());
    }

    #[test]
    fn add_control_respects_a_full_register() {
        let mut c = Circuit::new(2);
        c.cx(0, 1); // width == n: no free qubit anywhere
        assert!(AddControl.apply(&c, &mut rng(0)).is_err());
    }

    #[test]
    fn mutations_survive_ghz_and_qft_families() {
        for c in [generators::ghz(5), generators::qft(5, true)] {
            for mutator in registry(0.1) {
                // Not every kind applies to every family (GHZ has no
                // rotations) — but applying must never panic.
                let _ = mutator.apply(&c, &mut rng(7));
            }
        }
    }
}
