//! Content-addressed identities for circuits, configurations, and jobs.
//!
//! The verdict cache ([`crate::service::cache`]) must answer "have we
//! checked this exact pair under this exact configuration before?" without
//! holding the circuits themselves. This module supplies the keys:
//!
//! - [`CircuitId`] — a 128-bit fingerprint of a circuit's canonical byte
//!   encoding ([`qcirc::canon`]), a pure function of the circuit
//!   semantics-as-written: gate list, normalized angles, sorted control
//!   sets, qubit count. Names and other metadata don't contribute.
//! - [`ConfigDigest`] — a 64-bit fingerprint of every [`Config`] field
//!   that can change a verdict. `threads` is deliberately excluded (the
//!   scheduler's determinism contract makes verdicts thread-count
//!   invariant), as are `batch_size` (batched probe outcomes are
//!   bit-identical per stimulus, so the verdict is batch-size invariant)
//!   and the `event_sink` (observability, not semantics).
//! - [`JobKey`] — `(CircuitId, CircuitId, ConfigDigest)`: the cache key
//!   for one equivalence-checking job. Direction matters: checking
//!   `(G, G′)` and `(G′, G)` are distinct jobs.
//!
//! The hash is a seeded two-lane FNV-1a-64 variant with a SplitMix64
//! finalizer — streaming, dependency-free, and stable across platforms
//! (all arithmetic is wrapping on fixed-width integers). It is **not**
//! cryptographic; the cache tolerates the astronomically unlikely
//! collision the same way any content-addressed store of 2⁻¹²⁸ risk does.

use std::fmt;

use qcirc::Circuit;

use crate::config::{BackendKind, Config, Criterion, Fallback, StimulusStrategy};

/// Domain-separation seed for the service fingerprints. Changing it
/// invalidates every persisted cache key, so treat it as part of the
/// format version.
const SERVICE_SEED: u64 = 0x51a5_e9c3_0b7d_2f11;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// SplitMix64 mixing step: a cheap bijective avalanche on 64 bits.
#[must_use]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded streaming hasher producing 128 bits from two decorrelated
/// FNV-1a lanes.
#[derive(Debug, Clone)]
struct Fingerprinter {
    lane_lo: u64,
    lane_hi: u64,
}

impl Fingerprinter {
    fn new(seed: u64) -> Self {
        Fingerprinter {
            lane_lo: FNV_OFFSET ^ splitmix64(seed),
            lane_hi: FNV_OFFSET ^ splitmix64(seed ^ 0x5ee5_1eaf_0ddb_a11d),
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lane_lo = (self.lane_lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            // The high lane sees each byte complemented so the lanes
            // diverge even though they share the FNV prime.
            self.lane_hi = (self.lane_hi ^ u64::from(!b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u128 {
        let lo = splitmix64(self.lane_lo);
        let hi = splitmix64(self.lane_hi ^ self.lane_lo.rotate_left(32));
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

/// The 128-bit content-addressed identity of a circuit.
///
/// Two circuits get the same id exactly when their canonical encodings
/// ([`qcirc::canon::encode_circuit`]) are byte-identical: same qubit
/// count, same gate sequence, same (normalized) parameters.
///
/// # Examples
///
/// ```
/// use qcec::CircuitId;
///
/// let g = qcirc::generators::ghz(4);
/// assert_eq!(CircuitId::of(&g), CircuitId::of(&g.clone()));
/// assert_ne!(CircuitId::of(&g), CircuitId::of(&qcirc::generators::ghz(5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CircuitId(u128);

impl CircuitId {
    /// Fingerprints a circuit.
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        let mut h = Fingerprinter::new(SERVICE_SEED);
        h.write(&qcirc::canon::encode_circuit(circuit));
        CircuitId(h.finish())
    }

    /// The raw 128-bit value.
    #[must_use]
    pub fn as_u128(&self) -> u128 {
        self.0
    }
}

impl fmt::Display for CircuitId {
    /// Renders as 32 lowercase hex digits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The 64-bit digest of the verdict-relevant [`Config`] fields.
///
/// Excluded by design: `threads` (verdicts are thread-count invariant per
/// the scheduler's determinism contract), `batch_size` (per-stimulus
/// outcomes are bit-identical at any batch size, so batching is a pure
/// throughput knob) and `event_sink` (pure observability). Everything
/// else — simulation count, seed, tolerance,
/// criterion, backend, fallback, stimulus strategy, deadline, DD node
/// limit, portfolio mode, Clifford peeling, application scheme —
/// contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigDigest(u64);

impl ConfigDigest {
    /// Digests a configuration.
    #[must_use]
    pub fn of(config: &Config) -> Self {
        let mut h = Fingerprinter::new(SERVICE_SEED ^ 0xc0f1_6d16_e570_0001);
        h.write_u64(config.simulations as u64);
        h.write_u64(config.seed);
        h.write_u64(config.fidelity_tolerance.to_bits());
        h.write(&[
            match config.criterion {
                Criterion::Strict => 0,
                Criterion::UpToGlobalPhase => 1,
            },
            match config.backend {
                BackendKind::Statevector => 0,
                BackendKind::DecisionDiagram => 1,
                BackendKind::Stab => 2,
                BackendKind::Mps => 3,
                // Distinct from every concrete engine: an `Auto` job's
                // verdict depends on the resolution heuristic, so it must
                // not share cache entries with an explicit selection.
                BackendKind::Auto => 4,
            },
            match config.fallback {
                Fallback::Alternating => 0,
                Fallback::ConstructAndCompare => 1,
                Fallback::None => 2,
            },
            match config.stimuli {
                StimulusStrategy::Random => 0,
                StimulusStrategy::Sequential => 1,
                StimulusStrategy::Product => 2,
                StimulusStrategy::Stabilizer => 3,
            },
            u8::from(config.portfolio),
            u8::from(config.peel),
            match config.scheme {
                qdd::ApplicationScheme::Sequential => 0,
                qdd::ApplicationScheme::OneToOne => 1,
                qdd::ApplicationScheme::Proportional => 2,
                qdd::ApplicationScheme::GateCost => 3,
            },
        ]);
        match config.deadline {
            None => h.write(&[0]),
            Some(d) => {
                h.write(&[1]);
                h.write_u64(d.as_nanos() as u64);
            }
        }
        h.write_u64(config.dd_node_limit as u64);
        h.write_u64(config.chi_max as u64);
        ConfigDigest(h.finish() as u64)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for ConfigDigest {
    /// Renders as 16 lowercase hex digits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The cache key of one equivalence-checking job:
/// `(CircuitId(G), CircuitId(G′), ConfigDigest)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey {
    /// Fingerprint of the left circuit `G`.
    pub g: CircuitId,
    /// Fingerprint of the right circuit `G′`.
    pub g_prime: CircuitId,
    /// Digest of the verdict-relevant configuration.
    pub config: ConfigDigest,
}

impl JobKey {
    /// Computes the key for a `(G, G′, config)` job.
    #[must_use]
    pub fn new(g: &Circuit, g_prime: &Circuit, config: &Config) -> Self {
        JobKey {
            g: CircuitId::of(g),
            g_prime: CircuitId::of(g_prime),
            config: ConfigDigest::of(config),
        }
    }

    /// A well-mixed 64-bit hash of the key, used for shard selection.
    #[must_use]
    pub(crate) fn shard_hash(&self) -> u64 {
        splitmix64(
            (self.g.0 as u64)
                ^ (self.g.0 >> 64) as u64
                ^ ((self.g_prime.0 as u64).rotate_left(17))
                ^ ((self.g_prime.0 >> 64) as u64).rotate_left(31)
                ^ self.config.0.rotate_left(7),
        )
    }
}

impl fmt::Display for JobKey {
    /// Renders as `g:g_prime:config` in hex.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.g, self.g_prime, self.config)
    }
}

/// Derives the per-job RNG seed from the base seed and the two circuit
/// fingerprints, so that (a) every distinct pair gets its own stimulus
/// stream and (b) resubmitting the same pair reuses the same stream —
/// which is what lets identical submissions share one [`JobKey`].
#[must_use]
pub fn derive_seed(base: u64, g: &CircuitId, g_prime: &CircuitId) -> u64 {
    let mut s = splitmix64(base ^ SERVICE_SEED);
    s = splitmix64(s ^ (g.0 as u64) ^ ((g.0 >> 64) as u64).rotate_left(13));
    splitmix64(s ^ (g_prime.0 as u64) ^ ((g_prime.0 >> 64) as u64).rotate_left(29))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn circuit_id_is_content_addressed() {
        let g = qcirc::generators::qft(4, true);
        assert_eq!(CircuitId::of(&g), CircuitId::of(&g.clone()));
        let mut g2 = g.clone();
        g2.x(0);
        assert_ne!(CircuitId::of(&g), CircuitId::of(&g2));
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let id = CircuitId::of(&qcirc::generators::ghz(3));
        let s = id.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        let key = JobKey::new(
            &qcirc::generators::ghz(3),
            &qcirc::generators::ghz(3),
            &Config::default(),
        );
        assert_eq!(key.to_string().len(), 32 + 1 + 32 + 1 + 16);
    }

    #[test]
    fn config_digest_tracks_semantics_not_observability() {
        use std::sync::Arc;
        let base = Config::default();
        assert_eq!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default())
        );
        // Verdict-relevant knobs change the digest…
        assert_ne!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default().with_simulations(11))
        );
        assert_ne!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default().with_seed(1))
        );
        assert_ne!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default().with_deadline(Some(Duration::from_secs(1))))
        );
        // The bond cap changes what a truncated MPS verdict can claim.
        assert_ne!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default().with_chi_max(8))
        );
        assert_ne!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default().with_backend(BackendKind::Mps))
        );
        assert_ne!(
            ConfigDigest::of(&Config::default().with_backend(BackendKind::Auto)),
            ConfigDigest::of(&Config::default().with_backend(BackendKind::Mps))
        );
        // The application scheme steers the complete check: the verdict
        // class is scheme-invariant but abort behaviour (deadline, node
        // budget) is not, so the cache must key on it.
        assert_ne!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default().with_scheme(qdd::ApplicationScheme::GateCost))
        );
        assert_eq!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default().with_scheme(qdd::ApplicationScheme::Proportional))
        );
        // …thread count, batch size and sinks do not.
        assert_eq!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default().with_threads(8))
        );
        assert_eq!(
            ConfigDigest::of(&base),
            ConfigDigest::of(&Config::default().with_batch_size(8))
        );
        assert_eq!(
            ConfigDigest::of(&base),
            ConfigDigest::of(
                &Config::default()
                    .with_event_sink(Arc::new(crate::scheduler::CollectingSink::new()))
            )
        );
    }

    #[test]
    fn job_key_is_directional() {
        let g = qcirc::generators::ghz(3);
        let mut g2 = g.clone();
        g2.z(0);
        let c = Config::default();
        assert_ne!(JobKey::new(&g, &g2, &c), JobKey::new(&g2, &g, &c));
        assert_eq!(JobKey::new(&g, &g2, &c), JobKey::new(&g, &g2, &c));
    }

    #[test]
    fn derived_seeds_differ_across_pairs_and_bases() {
        let a = CircuitId::of(&qcirc::generators::ghz(3));
        let b = CircuitId::of(&qcirc::generators::ghz(4));
        assert_ne!(derive_seed(0, &a, &b), derive_seed(0, &b, &a));
        assert_ne!(derive_seed(0, &a, &b), derive_seed(1, &a, &b));
        assert_eq!(derive_seed(7, &a, &b), derive_seed(7, &a, &b));
    }
}
