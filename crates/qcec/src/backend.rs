//! Simulation backends: the engines that execute one equivalence probe.
//!
//! Every consumer of the simulation stage — the sequential flow
//! ([`run_simulations`](crate::run_simulations)), the
//! [`scheduler`](crate::scheduler) worker pool, counterexample replay in
//! [`diagnose`](crate::diagnose), and the fault-injection
//! [`campaign`](crate::campaign) — drives probes through one trait,
//! [`SimBackend`], and is therefore engine-agnostic. Three implementations
//! ship:
//!
//! * [`StatevectorBackend`] — dense `O(2ⁿ)` simulation via
//!   [`qsim::Simulator`]; fast and predictable, and the default;
//! * [`qdd::DdBackend`] — decision-diagram simulation (the paper's engine
//!   \[25\]): each stimulus is pushed through both circuits as vector-edge
//!   passes, exponentially compact whenever the intermediate states stay
//!   structured (basis-permutation arithmetic, Clifford prefixes, …);
//! * [`StabBackend`] — stabilizer/CHP tableau simulation via
//!   [`qstab::Tableau`]: `O(n²)` bit operations per gate when the probe
//!   (stimulus prefix and both circuits) is Clifford-only, with a
//!   transparent per-probe fallback to the dense engine otherwise — the
//!   polynomial-time fast path for Clifford-dominated workloads.
//!
//! # Contract
//!
//! A probe is a **pure function** of `(G, G′, stimulus)`: backends must not
//! let hidden state leak between runs. The statevector backend reuses raw
//! buffers (overwritten wholesale each run); the DD backend builds a fresh
//! hash-consing package per run precisely because interned edge weights
//! *would* otherwise depend on probe order. This purity is what lets the
//! scheduler replay pool results in stimulus order and reproduce the
//! sequential verdict bit for bit, for either engine.
//!
//! Cancellation granularity differs by engine and is part of the contract:
//! the statevector backend polls `keep_going` between gate applications,
//! while the DD backend polls once between its two circuit passes (a DD
//! pass has no cheap intermediate abort points). The stab backend polls
//! between tableau gate conjugations on its fast path and inherits the
//! dense granularity when it falls back. Either way a `false` poll yields
//! `None`, never a partial overlap.

use qcirc::Circuit;
use qnum::Complex;
use qsim::{ProbeWorkspace, Simulator};
use qstim::Stimulus;

use crate::config::{BackendKind, Config, Criterion};

/// What one completed probe hands back: the overlap plus backend-specific
/// effort instrumentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOutcome {
    /// The overlap `⟨u|u′⟩` of the two output states.
    pub overlap: Complex,
    /// Effort counters (zero for backends that do not track them).
    pub metrics: ProbeMetrics,
}

impl ProbeOutcome {
    /// An outcome carrying only an overlap (no effort counters).
    #[must_use]
    pub fn bare(overlap: Complex) -> Self {
        ProbeOutcome {
            overlap,
            metrics: ProbeMetrics::default(),
        }
    }
}

/// Per-probe effort counters. The dense backend's working set is fixed
/// (two `2ⁿ` buffers), so it reports zeros; the DD backend reports its
/// node-count instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeMetrics {
    /// Peak live decision-diagram nodes during the run (0 for dense
    /// backends).
    pub peak_nodes: usize,
    /// Distinct complex values interned by the end of the run (0 for dense
    /// backends).
    pub complex_values: usize,
}

/// One simulation engine, usable from the sequential flow and from worker
/// pools alike.
///
/// Implementations are shared by reference across scheduler workers, so
/// they must be `Send + Sync`; all per-run mutable state lives in the
/// per-thread [`Workspace`](SimBackend::Workspace).
pub trait SimBackend: Send + Sync {
    /// Per-thread scratch state: allocated once per worker (or once per
    /// sequential loop), reused across every probe on that thread.
    type Workspace: Send;

    /// The serializable selector naming this engine.
    fn kind(&self) -> BackendKind;

    /// Allocates one thread's scratch state for `n_qubits`-qubit probes.
    fn workspace(&self, n_qubits: usize) -> Self::Workspace;

    /// Probes one stimulus: prepares it, pushes it through both circuits,
    /// and returns the overlap `⟨u|u′⟩` of the outputs.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget (dense backends never fail).
    fn probe(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut Self::Workspace,
    ) -> Result<ProbeOutcome, qdd::DdLimitError> {
        Ok(self
            .probe_while(g, g_prime, stimulus, workspace, &|| true)?
            .expect("unconditional probe cannot be cancelled"))
    }

    /// Like [`SimBackend::probe`], but polls `keep_going` at the engine's
    /// natural abort points and returns `None` as soon as it reads
    /// `false` — the cancellable variant for worker pools whose remaining
    /// stimuli become moot once a counterexample is found elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget.
    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut Self::Workspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError>;

    /// Replays one stimulus through both circuits and returns the two
    /// *dense* output amplitude vectors, for counterexample diagnosis.
    /// Output is `O(2ⁿ)` regardless of engine, so this is for registers
    /// that fit in memory.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget.
    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut Self::Workspace,
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError>;
}

/// The dense statevector engine: wraps [`qsim::Simulator`] and a reusable
/// pair of state buffers per thread.
///
/// # Examples
///
/// ```
/// use qcec::backend::{SimBackend, StatevectorBackend};
/// use qcec::Stimulus;
///
/// let g = qcirc::generators::ghz(3);
/// let backend = StatevectorBackend::new();
/// let mut ws = backend.workspace(3);
/// let out = backend.probe(&g, &g, &Stimulus::Basis(5), &mut ws).unwrap();
/// assert!((out.overlap.norm_sqr() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatevectorBackend {
    sim: Simulator,
}

impl StatevectorBackend {
    /// A backend running its kernels sequentially.
    #[must_use]
    pub fn new() -> Self {
        StatevectorBackend {
            sim: Simulator::new(),
        }
    }

    /// A backend splitting large kernels over `threads` OS threads — for
    /// the *sequential* flow, where the probe itself is the only
    /// parallelism available.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        StatevectorBackend {
            sim: Simulator::with_threads(threads),
        }
    }

    /// A backend for use *inside* scheduler workers: kernels stay
    /// sequential so an `N`-worker pool uses exactly `N` OS threads.
    #[must_use]
    pub fn for_worker() -> Self {
        StatevectorBackend {
            sim: Simulator::for_worker(),
        }
    }

    /// The backend the sequential flow derives from its configuration:
    /// kernel-parallel when `config.threads > 1` (the probe is then the
    /// only parallelism), sequential otherwise.
    #[must_use]
    pub fn for_flow(config: &Config) -> Self {
        if config.threads > 1 {
            StatevectorBackend::with_threads(config.threads)
        } else {
            StatevectorBackend::new()
        }
    }
}

impl SimBackend for StatevectorBackend {
    type Workspace = ProbeWorkspace;

    fn kind(&self) -> BackendKind {
        BackendKind::Statevector
    }

    fn workspace(&self, n_qubits: usize) -> ProbeWorkspace {
        ProbeWorkspace::new(n_qubits)
    }

    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut ProbeWorkspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError> {
        let prefix = stimulus.prefix_circuit();
        Ok(self
            .sim
            .probe_stimulus_while(
                g,
                g_prime,
                prefix.as_ref(),
                stimulus.basis_state(),
                workspace,
                keep_going,
            )
            .map(ProbeOutcome::bare))
    }

    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut ProbeWorkspace,
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError> {
        // After a probe the workspace buffers hold exactly the two output
        // states.
        self.probe(g, g_prime, stimulus, workspace)?;
        Ok((
            workspace.left().amplitudes().to_vec(),
            workspace.right().amplitudes().to_vec(),
        ))
    }
}

/// The decision-diagram engine ([`qdd::DdBackend`]) seen through the flow's
/// probe trait.
///
/// Stateless per run — a fresh package is built for every probe (see the
/// module docs on purity), so its workspace carries nothing.
impl SimBackend for qdd::DdBackend {
    type Workspace = ();

    fn kind(&self) -> BackendKind {
        BackendKind::DecisionDiagram
    }

    fn workspace(&self, _n_qubits: usize) {}

    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        (): &mut (),
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError> {
        let prefix = stimulus.prefix_circuit();
        Ok(self
            .probe_while(
                g,
                g_prime,
                prefix.as_ref(),
                stimulus.basis_state(),
                keep_going,
            )?
            .map(|run| ProbeOutcome {
                overlap: run.overlap,
                metrics: ProbeMetrics {
                    peak_nodes: run.peak_nodes,
                    complex_values: run.complex_values,
                },
            }))
    }

    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        (): &mut (),
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError> {
        let mut package = qdd::Package::with_node_limit(g.n_qubits(), self.node_limit());
        let input = {
            let b = package.basis_vedge(stimulus.basis_state())?;
            match stimulus.prefix_circuit() {
                None => b,
                Some(prefix) => package.apply_to_vedge(&prefix, b)?,
            }
        };
        let a = package.apply_to_vedge(g, input)?;
        let b = package.apply_to_vedge(g_prime, input)?;
        Ok((package.to_statevector(a), package.to_statevector(b)))
    }
}

/// The stabilizer/CHP tableau engine: polynomial-time probes on
/// Clifford-only circuit pairs, dense fallback everywhere else.
///
/// Before touching any state the backend classifies the whole probe — the
/// stimulus prefix circuit (if any) and both circuits — with
/// [`qcirc::Gate::is_clifford`]. When everything is Clifford the probe runs
/// as `O(n²)`-per-gate tableau conjugations ([`qstab::Tableau`]) and the
/// overlap is the deterministic, measurement-free inner-product magnitude
/// `|⟨u|u′⟩|` ([`qstab::inner_product_magnitude`]), reported as a real
/// number (a tableau carries no global phase). On the first non-Clifford
/// gate the *entire* probe falls back to the wrapped [`StatevectorBackend`]
/// with the identical stimulus, so verdicts never depend on which path ran.
///
/// Two semantic consequences, both part of the contract:
///
/// * Stabilizer overlap magnitudes are exactly `0` or `2^{−k/2}` — the
///   same values (within float tolerance) the dense engines report for the
///   same Clifford probes — so per-run fidelity verdicts and decisive run
///   indices match the other backends.
/// * The tableau cannot represent a global phase, so under
///   [`Criterion::Strict`] the fast path would be unsound (it cannot
///   distinguish `U` from `−U`). [`StabBackend::for_flow`] therefore
///   disables the tableau path entirely under `Strict`; every probe runs
///   dense. Under the default [`Criterion::UpToGlobalPhase`] the judge's
///   cross-run phase-consistency check still operates on the fallback
///   path; on the tableau path all overlaps are real non-negative, which
///   is mutually consistent by construction. Within one flow the path is
///   uniform across runs — it depends only on the gate sets of `G`, `G′`
///   and the stimulus *strategy* (basis and stabilizer prefixes are
///   Clifford, product prefixes never are) — so the two regimes never mix.
///
/// # Examples
///
/// ```
/// use qcec::backend::{SimBackend, StabBackend};
/// use qcec::Stimulus;
///
/// // 32 qubits: far beyond dense reach, trivial for the tableau path.
/// let g = qcirc::generators::clifford_adder(15);
/// let backend = StabBackend::new();
/// let mut ws = backend.workspace(g.n_qubits());
/// let out = backend.probe(&g, &g, &Stimulus::Basis(77), &mut ws).unwrap();
/// assert_eq!(out.overlap.re, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct StabBackend {
    dense: StatevectorBackend,
    tableau_enabled: bool,
}

impl Default for StabBackend {
    fn default() -> Self {
        StabBackend::new()
    }
}

impl StabBackend {
    /// A backend whose dense fallback runs its kernels sequentially.
    #[must_use]
    pub fn new() -> Self {
        StabBackend {
            dense: StatevectorBackend::new(),
            tableau_enabled: true,
        }
    }

    /// A backend for use *inside* scheduler workers: the dense fallback
    /// stays sequential so an `N`-worker pool uses exactly `N` OS threads.
    #[must_use]
    pub fn for_worker() -> Self {
        StabBackend {
            dense: StatevectorBackend::for_worker(),
            tableau_enabled: true,
        }
    }

    /// The backend a scheduler worker derives from the flow configuration:
    /// [`StabBackend::for_worker`]'s sequential dense fallback combined
    /// with [`StabBackend::for_flow`]'s criterion gating of the tableau
    /// fast path.
    #[must_use]
    pub fn for_scheduled(config: &Config) -> Self {
        StabBackend {
            dense: StatevectorBackend::for_worker(),
            tableau_enabled: matches!(config.criterion, Criterion::UpToGlobalPhase),
        }
    }

    /// The backend the sequential flow derives from its configuration: the
    /// dense fallback follows [`StatevectorBackend::for_flow`], and the
    /// tableau fast path is enabled only under
    /// [`Criterion::UpToGlobalPhase`] (see the type docs for why `Strict`
    /// must run dense).
    #[must_use]
    pub fn for_flow(config: &Config) -> Self {
        StabBackend {
            dense: StatevectorBackend::for_flow(config),
            tableau_enabled: matches!(config.criterion, Criterion::UpToGlobalPhase),
        }
    }
}

/// Scratch state for [`StabBackend`] probes.
///
/// The tableau path allocates its `O(n²)` bits per probe (cloning a
/// tableau is how the two branches share the prepared stimulus), so the
/// workspace only carries the dense fallback's buffers — and those are
/// allocated *lazily*, on the first probe that actually falls back. This
/// is load-bearing: at the register widths the tableau path unlocks
/// (`n = 32` and beyond), eagerly allocating two `2ⁿ` dense buffers would
/// exhaust memory before the first probe ran.
pub struct StabWorkspace {
    n_qubits: usize,
    dense: Option<ProbeWorkspace>,
}

impl std::fmt::Debug for StabWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StabWorkspace")
            .field("n_qubits", &self.n_qubits)
            .field("dense_allocated", &self.dense.is_some())
            .finish()
    }
}

impl StabWorkspace {
    fn dense_buffers(&mut self) -> &mut ProbeWorkspace {
        let n = self.n_qubits;
        self.dense.get_or_insert_with(|| ProbeWorkspace::new(n))
    }
}

/// How one tableau fast-path attempt ended.
enum TableauProbe {
    /// The whole probe was Clifford; here is the overlap.
    Done(ProbeOutcome),
    /// A `keep_going` poll read `false` mid-run.
    Cancelled,
    /// A non-Clifford gate was found — run the probe on the dense engine.
    NonClifford,
}

fn tableau_probe(
    g: &Circuit,
    g_prime: &Circuit,
    stimulus: &Stimulus,
    keep_going: &dyn Fn() -> bool,
) -> TableauProbe {
    let prefix = stimulus.prefix_circuit();
    let all_clifford = |c: &Circuit| c.gates().iter().all(qcirc::Gate::is_clifford);
    if !all_clifford(g)
        || !all_clifford(g_prime)
        || prefix.as_ref().is_some_and(|p| !all_clifford(p))
    {
        return TableauProbe::NonClifford;
    }
    let mut left = qstab::Tableau::basis(g.n_qubits(), stimulus.basis_state());
    if let Some(prefix) = &prefix {
        for gate in prefix.gates() {
            if !keep_going() {
                return TableauProbe::Cancelled;
            }
            // The up-front scan used qcirc's classifier; qstab's own
            // classifier is the authority on what it can conjugate, so an
            // error here demotes the probe to the dense path rather than
            // panicking on a (theoretically impossible) disagreement.
            if qstab::apply_gate(&mut left, gate).is_err() {
                return TableauProbe::NonClifford;
            }
        }
    }
    let mut right = left.clone();
    for (tableau, circuit) in [(&mut left, g), (&mut right, g_prime)] {
        for gate in circuit.gates() {
            if !keep_going() {
                return TableauProbe::Cancelled;
            }
            if qstab::apply_gate(tableau, gate).is_err() {
                return TableauProbe::NonClifford;
            }
        }
    }
    let magnitude = qstab::inner_product_magnitude(&left, &right);
    TableauProbe::Done(ProbeOutcome::bare(Complex::new(magnitude, 0.0)))
}

impl SimBackend for StabBackend {
    type Workspace = StabWorkspace;

    fn kind(&self) -> BackendKind {
        BackendKind::Stab
    }

    fn workspace(&self, n_qubits: usize) -> StabWorkspace {
        StabWorkspace {
            n_qubits,
            dense: None,
        }
    }

    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut StabWorkspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError> {
        if self.tableau_enabled {
            match tableau_probe(g, g_prime, stimulus, keep_going) {
                TableauProbe::Done(outcome) => return Ok(Some(outcome)),
                TableauProbe::Cancelled => return Ok(None),
                TableauProbe::NonClifford => {}
            }
        }
        self.dense
            .probe_while(g, g_prime, stimulus, workspace.dense_buffers(), keep_going)
    }

    /// Replays through the dense fallback unconditionally: replay output is
    /// `O(2ⁿ)` amplitudes regardless of engine, so there is nothing for the
    /// tableau to save — counterexample diagnosis only happens on registers
    /// that fit in dense memory anyway.
    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut StabWorkspace,
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError> {
        self.dense
            .replay(g, g_prime, stimulus, workspace.dense_buffers())
    }
}

/// The DD engine the flow derives from its configuration (honouring
/// [`Config::dd_node_limit`](crate::Config::dd_node_limit)).
#[must_use]
pub fn dd_for_flow(config: &Config) -> qdd::DdBackend {
    qdd::DdBackend::with_node_limit(config.dd_node_limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    fn probe_on<B: SimBackend>(
        backend: &B,
        g: &Circuit,
        g_prime: &Circuit,
        s: &Stimulus,
    ) -> Complex {
        let mut ws = backend.workspace(g.n_qubits());
        backend.probe(g, g_prime, s, &mut ws).unwrap().overlap
    }

    #[test]
    fn backends_agree_on_basis_probes() {
        let g = generators::grover(4, 6, 2);
        let mut buggy = g.clone();
        buggy.z(2);
        let sv = StatevectorBackend::new();
        let dd = qdd::DdBackend::new();
        for basis in [0u64, 3, 9, 15] {
            let s = Stimulus::Basis(basis);
            let a = probe_on(&sv, &g, &buggy, &s);
            let b = probe_on(&dd, &g, &buggy, &s);
            assert!((a - b).norm_sqr() < 1e-18, "basis {basis}: {a} vs {b}");
        }
    }

    #[test]
    fn backends_agree_on_prefixed_stimuli() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(1);
        let config = Config::default()
            .with_stimuli(crate::StimulusStrategy::Stabilizer)
            .with_simulations(4)
            .with_seed(13);
        let sv = StatevectorBackend::new();
        let dd = qdd::DdBackend::new();
        for s in crate::draw_stimuli(4, &config) {
            let a = probe_on(&sv, &g, &buggy, &s);
            let b = probe_on(&dd, &g, &buggy, &s);
            assert!((a - b).norm_sqr() < 1e-18, "{}: {a} vs {b}", s.kind());
        }
    }

    #[test]
    fn dd_metrics_are_populated_and_sv_metrics_are_zero() {
        let g = generators::ghz(6);
        let s = Stimulus::Basis(0);
        let sv = StatevectorBackend::new();
        let mut ws = sv.workspace(6);
        let out = sv.probe(&g, &g, &s, &mut ws).unwrap();
        assert_eq!(out.metrics, ProbeMetrics::default());
        let dd = qdd::DdBackend::new();
        let out = SimBackend::probe(&dd, &g, &g, &s, &mut ()).unwrap();
        assert!(out.metrics.peak_nodes > 0);
        assert!(out.metrics.complex_values > 0);
    }

    #[test]
    fn replay_returns_matching_dense_outputs() {
        let g = generators::w_state(3);
        let mut buggy = g.clone();
        buggy.x(1);
        let s = Stimulus::Basis(0);
        let sv = StatevectorBackend::new();
        let dd = qdd::DdBackend::new();
        let (a_sv, b_sv) = sv.replay(&g, &buggy, &s, &mut sv.workspace(3)).unwrap();
        let (a_dd, b_dd) = dd.replay(&g, &buggy, &s, &mut ()).unwrap();
        assert_eq!(a_sv.len(), 8);
        for (x, y) in a_sv.iter().zip(&a_dd) {
            assert!((*x - *y).norm_sqr() < 1e-18);
        }
        for (x, y) in b_sv.iter().zip(&b_dd) {
            assert!((*x - *y).norm_sqr() < 1e-18);
        }
    }

    #[test]
    fn cancelled_probe_is_none_on_both_backends() {
        let g = generators::qft(5, true);
        let s = Stimulus::Basis(7);
        let never = || false;
        let sv = StatevectorBackend::new();
        let out = sv
            .probe_while(&g, &g, &s, &mut sv.workspace(5), &never)
            .unwrap();
        assert!(out.is_none());
        let dd = qdd::DdBackend::new();
        let out = SimBackend::probe_while(&dd, &g, &g, &s, &mut (), &never).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn dd_node_budget_errors_surface_through_the_trait() {
        let g = generators::supremacy_2d(3, 4, 12, 1);
        let dd = dd_for_flow(&Config::default().with_dd_node_limit(50));
        let e = SimBackend::probe(&dd, &g, &g, &Stimulus::Basis(0), &mut ()).unwrap_err();
        assert_eq!(e.node_limit, 50);
    }

    #[test]
    fn stab_matches_dense_overlap_magnitudes_on_clifford_probes() {
        let g = generators::clifford_adder(4);
        let mut buggy = g.clone();
        buggy.z(3);
        let sv = StatevectorBackend::new();
        let stab = StabBackend::new();
        let config = Config::default()
            .with_stimuli(crate::StimulusStrategy::Stabilizer)
            .with_simulations(4)
            .with_seed(21);
        let mut stimuli = crate::draw_stimuli(g.n_qubits(), &config);
        stimuli.push(Stimulus::Basis(37));
        for s in &stimuli {
            let a = probe_on(&sv, &g, &buggy, s);
            let b = probe_on(&stab, &g, &buggy, s);
            assert!(
                (a.abs() - b.abs()).abs() < 1e-9,
                "{}: |{a}| vs |{b}|",
                s.kind()
            );
            assert_eq!(b.im, 0.0, "tableau overlaps are real");
        }
    }

    #[test]
    fn stab_falls_back_to_dense_on_non_clifford_probes() {
        // A T gate forces the fallback; the full complex overlap (phase
        // included) must then match the dense engine bit for bit.
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(2);
        let sv = StatevectorBackend::new();
        let stab = StabBackend::new();
        for basis in [0u64, 5, 11] {
            let s = Stimulus::Basis(basis);
            let a = probe_on(&sv, &g, &buggy, &s);
            let b = probe_on(&stab, &g, &buggy, &s);
            assert!((a - b).norm_sqr() < 1e-18, "basis {basis}: {a} vs {b}");
        }
    }

    #[test]
    fn stab_probes_32_qubits_where_dense_cannot_run() {
        // 2³² amplitudes is 64 GiB of state — the lazy workspace must not
        // allocate it, and the tableau path must finish in milliseconds.
        let g = generators::clifford_adder(15);
        assert_eq!(g.n_qubits(), 32);
        let mut buggy = g.clone();
        buggy.x(9);
        let stab = StabBackend::new();
        let mut ws = stab.workspace(32);
        let same = stab.probe(&g, &g, &Stimulus::Basis(123), &mut ws).unwrap();
        assert_eq!(same.overlap, Complex::new(1.0, 0.0));
        let diff = stab
            .probe(&g, &buggy, &Stimulus::Basis(123), &mut ws)
            .unwrap();
        assert!(diff.overlap.norm_sqr() < 1.0 - 1e-9);
        assert!(
            format!("{ws:?}").contains("dense_allocated: false"),
            "a Clifford-only probe must never touch dense buffers: {ws:?}"
        );
    }

    #[test]
    fn stab_cancellation_yields_none_on_both_paths() {
        let never = || false;
        let stab = StabBackend::new();
        // Tableau path.
        let g = generators::ghz(6);
        let out = stab
            .probe_while(&g, &g, &Stimulus::Basis(3), &mut stab.workspace(6), &never)
            .unwrap();
        assert!(out.is_none());
        // Fallback path.
        let g = generators::qft(5, true);
        let out = stab
            .probe_while(&g, &g, &Stimulus::Basis(7), &mut stab.workspace(5), &never)
            .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn strict_criterion_disables_the_tableau_path() {
        // Z on |1⟩: ⟨u|u′⟩ = −1. Up to global phase that is agreement; the
        // tableau would report 1.0 and could not see the sign, so under
        // Strict the flow's backend must probe densely and observe −1.
        let g = qcirc::Circuit::new(1);
        let mut phased = qcirc::Circuit::new(1);
        phased.z(0);
        let s = Stimulus::Basis(1);
        let strict = StabBackend::for_flow(&Config::default().with_criterion(Criterion::Strict));
        let overlap = probe_on(&strict, &g, &phased, &s);
        assert!((overlap - Complex::new(-1.0, 0.0)).norm_sqr() < 1e-18);
        let phase_free = StabBackend::for_flow(&Config::default());
        let overlap = probe_on(&phase_free, &g, &phased, &s);
        assert_eq!(overlap, Complex::new(1.0, 0.0));
    }

    #[test]
    fn stab_replay_produces_dense_outputs() {
        let g = generators::ghz(3);
        let mut buggy = g.clone();
        buggy.x(1);
        let stab = StabBackend::new();
        let sv = StatevectorBackend::new();
        let s = Stimulus::Basis(2);
        let (a, b) = stab.replay(&g, &buggy, &s, &mut stab.workspace(3)).unwrap();
        let (a_sv, b_sv) = sv.replay(&g, &buggy, &s, &mut sv.workspace(3)).unwrap();
        assert_eq!(a, a_sv);
        assert_eq!(b, b_sv);
    }
}
