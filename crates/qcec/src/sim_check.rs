//! The simulation stage of the flow: `r` random basis states, early exit on
//! the first counterexample.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qcirc::Circuit;
use qnum::Complex;
use qsim::Simulator;

use crate::config::{Config, Criterion, SimBackend};
use crate::outcome::Counterexample;

/// Outcome of the simulation stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimVerdict {
    /// A differing basis state was found — non-equivalence is proven.
    CounterexampleFound(Counterexample),
    /// All runs agreed.
    AllAgreed {
        /// The number of runs performed.
        runs: usize,
    },
}

/// Runs up to `config.simulations` random basis-state simulations of both
/// circuits, comparing outputs per the configured criterion.
///
/// Basis states are drawn uniformly at random with a seeded RNG; for small
/// registers (`2ⁿ ≤ r`) every basis state is enumerated instead, making the
/// stage a *complete* check by itself.
///
/// # Errors
///
/// Returns [`qdd::DdLimitError`] only with the decision-diagram backend,
/// when a simulation exceeds the node limit.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ.
pub fn run_simulations(
    g: &Circuit,
    g_prime: &Circuit,
    config: &Config,
) -> Result<SimVerdict, qdd::DdLimitError> {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let n = g.n_qubits();
    let bases = draw_stimuli(n, config);

    let mut judge = Judge::new(config);
    match config.backend {
        SimBackend::Statevector => {
            let sim = if config.threads > 1 {
                Simulator::with_threads(config.threads)
            } else {
                Simulator::new()
            };
            // One pair of state buffers for the whole loop — probes are
            // allocation-free after this.
            let mut workspace = qsim::ProbeWorkspace::new(n);
            for (run, &basis) in bases.iter().enumerate() {
                let overlap = sim.probe_basis_with(g, g_prime, basis, &mut workspace);
                if let Some(ce) = judge.observe(overlap, basis, run + 1) {
                    return Ok(SimVerdict::CounterexampleFound(ce));
                }
            }
        }
        SimBackend::DecisionDiagram => {
            let mut package = qdd::Package::with_node_limit(n, config.dd_node_limit);
            for (run, &basis) in bases.iter().enumerate() {
                let a = package.apply_to_basis(g, basis)?;
                let b = package.apply_to_basis(g_prime, basis)?;
                // Equal canonical edges short-circuit the inner product.
                let overlap = if package.vedges_equal(a, b) {
                    qnum::Complex::ONE
                } else {
                    package.inner_product(a, b)
                };
                if let Some(ce) = judge.observe(overlap, basis, run + 1) {
                    return Ok(SimVerdict::CounterexampleFound(ce));
                }
                // Nothing from this run is needed again; let the package
                // reclaim its arenas before the next one.
                if package.wants_gc() {
                    package.compact(&[], &[]);
                }
            }
        }
    }
    Ok(SimVerdict::AllAgreed { runs: bases.len() })
}

/// Draws the full stimulus list for one flow invocation: the seeded RNG
/// stream depends only on the configuration, never on scheduling — the
/// scheduler pre-draws through this same function, which is what keeps
/// parallel verdicts deterministic.
pub(crate) fn draw_stimuli(n_qubits: usize, config: &Config) -> Vec<u64> {
    match config.stimuli {
        crate::config::StimulusStrategy::Random => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            choose_bases(n_qubits, config.simulations, &mut rng)
        }
        crate::config::StimulusStrategy::Sequential => {
            let space: u128 = 1u128 << n_qubits;
            (0..config.simulations as u128)
                .take_while(|&i| i < space)
                .map(|i| i as u64)
                .collect()
        }
    }
}

/// Chooses the stimuli: distinct random basis states, or all of them when
/// the space is small.
fn choose_bases(n_qubits: usize, r: usize, rng: &mut StdRng) -> Vec<u64> {
    let space: u128 = 1u128 << n_qubits;
    if space <= r as u128 {
        return (0..space as u64).collect();
    }
    let mut chosen = Vec::with_capacity(r);
    while chosen.len() < r {
        let candidate = rng.gen_range(0..space as u64);
        if !chosen.contains(&candidate) {
            chosen.push(candidate);
        }
    }
    chosen
}

/// Stateful per-run comparison.
///
/// Under [`Criterion::UpToGlobalPhase`] a single run only checks
/// `|⟨u|u′⟩| = 1`; a diagonal error that leaves each *basis* input in a
/// pure phase would slip through every run individually. Soundness comes
/// from the cross-run condition: `U' = e^{iφ}U` forces the *same* overlap
/// phase on every column, so the judge records the first run's phase and
/// flags any later run that disagrees
/// ([`Mismatch::PhaseInconsistency`](crate::Mismatch)).
pub(crate) struct Judge<'a> {
    config: &'a Config,
    expected_phase: Option<Complex>,
}

impl<'a> Judge<'a> {
    pub(crate) fn new(config: &'a Config) -> Self {
        Judge {
            config,
            expected_phase: None,
        }
    }

    pub(crate) fn observe(
        &mut self,
        overlap: Complex,
        basis: u64,
        run: usize,
    ) -> Option<Counterexample> {
        use crate::outcome::Mismatch;
        let ce = |mismatch: Mismatch| Counterexample {
            basis,
            overlap,
            fidelity: overlap.norm_sqr(),
            run,
            mismatch,
        };
        match self.config.criterion {
            // ⟨u|u′⟩ = 1 exactly (within tolerance).
            Criterion::Strict => {
                if (overlap - Complex::ONE).norm_sqr() > self.config.fidelity_tolerance {
                    return Some(ce(Mismatch::Output));
                }
            }
            Criterion::UpToGlobalPhase => {
                if (overlap.norm_sqr() - 1.0).abs() > self.config.fidelity_tolerance {
                    return Some(ce(Mismatch::Output));
                }
                match self.expected_phase {
                    None => self.expected_phase = Some(overlap),
                    Some(expected) => {
                        if (overlap - expected).norm_sqr() > self.config.fidelity_tolerance {
                            return Some(ce(Mismatch::PhaseInconsistency {
                                expected: expected.arg(),
                                found: overlap.arg(),
                            }));
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn equivalent_circuits_pass_all_runs() {
        let g = generators::qft(4, true);
        let opt = qcirc::optimize::optimize(&g);
        let v = run_simulations(&g, &opt, &Config::default()).unwrap();
        assert_eq!(v, SimVerdict::AllAgreed { runs: 10 });
    }

    #[test]
    fn single_qubit_error_is_caught_first_run() {
        let g = generators::qft(5, true);
        let mut buggy = g.clone();
        buggy.x(3);
        let v = run_simulations(&g, &buggy, &Config::default()).unwrap();
        match v {
            SimVerdict::CounterexampleFound(ce) => {
                assert_eq!(ce.run, 1, "a 1q error affects every column");
                assert!(ce.fidelity < 1.0 - 1e-6);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn small_registers_enumerate_every_basis_state() {
        let mut a = qcirc::Circuit::new(2);
        a.h(0);
        // b differs only on the |11⟩-ish column: a CZ.
        let mut b = a.clone();
        b.cz(0, 1);
        let v = run_simulations(&a, &b, &Config::default().with_simulations(10)).unwrap();
        // 2² = 4 ≤ 10 → full enumeration must find the difference.
        assert!(matches!(v, SimVerdict::CounterexampleFound(_)));
    }

    #[test]
    fn global_phase_handling_differs_by_criterion() {
        let mut a = qcirc::Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = a.clone();
        b.rz(2.0 * std::f64::consts::PI, 1); // global −1
        let strict = Config::default().with_criterion(Criterion::Strict);
        let v = run_simulations(&a, &b, &strict).unwrap();
        assert!(matches!(v, SimVerdict::CounterexampleFound(_)));
        let phased = Config::default().with_criterion(Criterion::UpToGlobalPhase);
        let v = run_simulations(&a, &b, &phased).unwrap();
        assert!(matches!(v, SimVerdict::AllAgreed { .. }));
    }

    #[test]
    fn dd_backend_agrees_with_statevector() {
        let g = generators::grover(4, 3, 2);
        let mut buggy = g.clone();
        buggy.s(1);
        for backend in [SimBackend::Statevector, SimBackend::DecisionDiagram] {
            let config = Config::default().with_backend(backend).with_seed(5);
            let v = run_simulations(&g, &buggy, &config).unwrap();
            assert!(
                matches!(v, SimVerdict::CounterexampleFound(_)),
                "backend {backend:?}"
            );
            let v = run_simulations(&g, &g, &config).unwrap();
            assert!(matches!(v, SimVerdict::AllAgreed { .. }));
        }
    }

    #[test]
    fn basis_dependent_phases_are_caught_by_consistency_tracking() {
        // An S gate on a qubit that stays classical turns every basis input
        // into a pure phase (i^b): each run individually looks like "equal
        // up to global phase", but the phases differ across runs.
        let a = qcirc::Circuit::new(2);
        let mut b = qcirc::Circuit::new(2);
        b.s(0);
        let config = Config::default().with_simulations(4);
        let v = run_simulations(&a, &b, &config).unwrap();
        match v {
            SimVerdict::CounterexampleFound(ce) => {
                assert!(matches!(
                    ce.mismatch,
                    crate::outcome::Mismatch::PhaseInconsistency { .. }
                ));
                assert!((ce.fidelity - 1.0).abs() < 1e-9);
            }
            other => panic!("diagonal error slipped through: {other:?}"),
        }
        // The same pair on the DD backend.
        let config = config.with_backend(SimBackend::DecisionDiagram);
        let v = run_simulations(&a, &b, &config).unwrap();
        assert!(matches!(v, SimVerdict::CounterexampleFound(_)));
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let g = generators::supremacy_2d(2, 3, 6, 1);
        let mut buggy = g.clone();
        buggy.z(4);
        let config = Config::default().with_seed(42);
        let a = run_simulations(&g, &buggy, &config).unwrap();
        let b = run_simulations(&g, &buggy, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_simulations_always_agree() {
        let g = generators::ghz(3);
        let mut buggy = g.clone();
        buggy.x(0);
        let config = Config::default().with_simulations(0);
        let v = run_simulations(&g, &buggy, &config).unwrap();
        assert_eq!(v, SimVerdict::AllAgreed { runs: 0 });
    }

    #[test]
    fn sequential_strategy_misses_high_controlled_errors() {
        // An error gated on the top qubits being |1⟩ lives in the highest
        // columns; sequential stimuli |0⟩, |1⟩, … never reach them, while
        // random stimuli have a fair chance. This is the ablation that
        // justifies the paper's *random* choice.
        let n = 10;
        let g = qcirc::Circuit::new(n);
        let mut buggy = qcirc::Circuit::new(n);
        buggy.mcz((0..n - 1).collect(), n - 1);
        let sequential = Config::default()
            .with_stimuli(crate::config::StimulusStrategy::Sequential)
            .with_simulations(16);
        let v = run_simulations(&g, &buggy, &sequential).unwrap();
        assert!(
            matches!(v, SimVerdict::AllAgreed { .. }),
            "sequential stimuli cannot reach the corrupted columns"
        );
        // Random stimuli find it eventually (with enough runs).
        let random = Config::default().with_simulations(1000).with_seed(3);
        let v = run_simulations(&g, &buggy, &random).unwrap();
        assert!(matches!(v, SimVerdict::CounterexampleFound(_)));
    }

    #[test]
    fn chosen_bases_are_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let bases = choose_bases(20, 50, &mut rng);
        assert_eq!(bases.len(), 50);
        let mut dedup = bases.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 50);
    }
}
