//! Property-based cross-crate invariants.

use proptest::prelude::*;
use qcirc::{generators, Circuit, Gate, GateKind};
use qsim::Simulator;

/// Strategy: a random well-formed circuit on `n` qubits described by a seed
/// (delegating generation to the seeded generator keeps shrinking sane).
fn circuit_seed() -> impl Strategy<Value = (usize, u64)> {
    (3usize..6, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulation preserves the norm for every circuit and basis state.
    #[test]
    fn simulation_preserves_norm((n, seed) in circuit_seed(), basis_sel in any::<u64>()) {
        let c = generators::random_clifford_t(n, 60, seed);
        let basis = basis_sel % (1 << n);
        let out = Simulator::new().run_basis(&c, basis);
        prop_assert!(out.is_normalized());
    }

    /// G · G⁻¹ maps every basis state to itself.
    #[test]
    fn inverse_roundtrips((n, seed) in circuit_seed(), basis_sel in any::<u64>()) {
        let c = generators::random_clifford_t(n, 50, seed);
        let mut roundtrip = c.clone();
        roundtrip.append(&c.inverse());
        let basis = basis_sel % (1 << n);
        let out = Simulator::new().run_basis(&roundtrip, basis);
        prop_assert!(out.probability(basis) > 1.0 - 1e-9);
    }

    /// Optimization never changes the unitary (checked via 3 random probes
    /// plus the flow).
    #[test]
    fn optimization_is_exact((n, seed) in circuit_seed()) {
        let c = generators::random_clifford_t(n, 80, seed);
        let o = qcirc::optimize::optimize(&c);
        let result = qcec::check_equivalence(
            &c,
            &o,
            &qcec::Config::new().with_criterion(qcec::Criterion::Strict),
        ).unwrap();
        prop_assert!(result.outcome.is_equivalent(), "{}", result.outcome);
    }

    /// Routing to a random-ish device preserves the unitary.
    #[test]
    fn routing_is_exact((n, seed) in circuit_seed()) {
        let c = generators::random_clifford_t(n, 40, seed);
        let device = qcirc::mapping::CouplingMap::linear(n);
        let routed = qcirc::mapping::route_or_panic(&c, &device);
        let result = qcec::check_equivalence(
            &c,
            &routed.circuit,
            &qcec::Config::new().with_criterion(qcec::Criterion::Strict),
        ).unwrap();
        prop_assert!(result.outcome.is_equivalent());
    }

    /// Decomposition preserves the unitary up to (at most) global phase.
    #[test]
    fn decomposition_is_phase_exact(seed in any::<u64>()) {
        let c = generators::toffoli_network(5, 15, 3, seed);
        let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&c);
        let result = qcec::check_equivalence_default(&c, &lowered).unwrap();
        prop_assert!(result.outcome.is_equivalent(), "{}", result.outcome);
    }

    /// The DD and statevector backends agree on random probes.
    #[test]
    fn backends_agree_on_probes((n, seed) in circuit_seed(), basis_sel in any::<u64>()) {
        let c = generators::random_clifford_t(n, 50, seed);
        let basis = basis_sel % (1 << n);
        let sv = Simulator::new().run_basis(&c, basis);
        let mut p = qdd::Package::new(n);
        let v = p.apply_to_basis(&c, basis).unwrap();
        for (i, amp) in p.to_statevector(v).iter().enumerate() {
            prop_assert!(amp.approx_eq(sv.amplitudes()[i]));
        }
    }

    /// QASM round-trips every random circuit (structure and semantics).
    #[test]
    fn qasm_roundtrip((n, seed) in circuit_seed()) {
        let c = generators::random_clifford_t(n, 40, seed);
        let parsed = qcirc::qasm::parse(&qcirc::qasm::write(&c)).unwrap();
        prop_assert_eq!(parsed.n_qubits(), c.n_qubits());
        let result = qcec::check_equivalence(
            &c,
            &parsed,
            &qcec::Config::new().with_criterion(qcec::Criterion::Strict),
        ).unwrap();
        prop_assert!(result.outcome.is_equivalent());
    }

    /// A circuit is always equivalent to itself with an extra canceling
    /// pair inserted anywhere.
    #[test]
    fn inserted_canceling_pair_is_equivalent(
        (n, seed) in circuit_seed(),
        pos_sel in any::<usize>(),
        qubit_sel in any::<usize>(),
    ) {
        let c = generators::random_clifford_t(n, 30, seed);
        let mut padded = c.clone();
        let pos = pos_sel % (padded.len() + 1);
        let q = qubit_sel % n;
        padded.insert(pos, Gate::single(GateKind::H, q));
        padded.insert(pos + 1, Gate::single(GateKind::H, q));
        let result = qcec::check_equivalence_default(&c, &padded).unwrap();
        prop_assert!(result.outcome.is_equivalent());
    }

    /// Injected random errors essentially never survive the default flow on
    /// elementary circuits (statistically; equivalent-after-injection cases
    /// are tolerated when proven equivalent by the complete check).
    #[test]
    fn injected_errors_do_not_slip_through(seed in any::<u64>()) {
        use rand::SeedableRng;
        let c = generators::trotter_heisenberg(2, 3, 1, 0.17, 0.6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (buggy, _) = qcirc::errors::inject_random(&c, &mut rng).unwrap();
        let result = qcec::check_equivalence_default(&c, &buggy).unwrap();
        // Either proven different, or proven equivalent (injection was a
        // no-op semantically); never an inconclusive timeout on 6 qubits.
        prop_assert!(
            result.outcome.is_not_equivalent() || result.outcome.is_equivalent()
        );
    }
}

/// Non-proptest determinism check: the whole flow is reproducible.
#[test]
fn flow_is_deterministic() {
    let g = generators::supremacy_2d(2, 3, 6, 11);
    let mut buggy = g.clone();
    buggy.z(3);
    let a = qcec::check_equivalence_default(&g, &buggy).unwrap();
    let b = qcec::check_equivalence_default(&g, &buggy).unwrap();
    assert_eq!(a.outcome, b.outcome);
}

/// A zero-gate circuit is equivalent to a fully-cancelling circuit.
#[test]
fn empty_equals_cancelled() {
    let empty = Circuit::new(4);
    let mut busy = Circuit::new(4);
    busy.h(0).cx(0, 1).ccx(1, 2, 3);
    busy.append(&busy.clone().inverse());
    let result = qcec::check_equivalence_default(&empty, &busy).unwrap();
    assert!(result.outcome.is_equivalent());
}
