//! Micro-benchmarks of the statevector gate kernels (experiment MB).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnum::Matrix2;
use qsim::kernels;

fn random_state(n: usize) -> Vec<qnum::Complex> {
    let dim = 1usize << n;
    let norm = 1.0 / (dim as f64).sqrt();
    (0..dim)
        .map(|i| qnum::Complex::from_polar(norm, i as f64 * 0.37))
        .collect()
}

fn bench_single_qubit_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_hadamard");
    for n in [10usize, 14, 18] {
        let amps = random_state(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let h = Matrix2::hadamard();
            b.iter_batched(
                || amps.clone(),
                |mut a| kernels::apply_controlled_single(&mut a, 0, n / 2, &h),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_diagonal_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_rz_vs_u3");
    let n = 16;
    let amps = random_state(n);
    let rz = Matrix2::rz(0.3);
    group.bench_function("rz_diagonal", |b| {
        b.iter_batched(
            || amps.clone(),
            |mut a| kernels::apply_controlled_single(&mut a, 0, 8, &rz),
            criterion::BatchSize::LargeInput,
        );
    });
    let u3 = Matrix2::u3(0.3, 0.2, 0.1);
    group.bench_function("u3_general", |b| {
        b.iter_batched(
            || amps.clone(),
            |mut a| kernels::apply_controlled_single(&mut a, 0, 8, &u3),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_controlled_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_cx");
    let n = 16;
    let amps = random_state(n);
    let x = Matrix2::pauli_x();
    group.bench_function("cx", |b| {
        b.iter_batched(
            || amps.clone(),
            |mut a| kernels::apply_controlled_single(&mut a, 1 << 3, 8, &x),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("swap", |b| {
        b.iter_batched(
            || amps.clone(),
            |mut a| kernels::apply_controlled_swap(&mut a, 0, 3, 8),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_qubit_kernel,
    bench_diagonal_fast_path,
    bench_controlled_kernel
);
criterion_main!(benches);
