//! Mapping circuits to device architectures (\[6\]–\[10\]): coupling maps and a
//! SWAP-insertion router.
//!
//! Routing with the default options preserves the circuit unitary exactly
//! (identity initial layout, permutation restored at the end) — producing
//! precisely the `G` vs `G'` pairs of the paper's Fig. 1b/Fig. 2 example.

mod coupling;
mod router;

pub use coupling::CouplingMap;
pub use router::{
    respects_coupling, route, route_or_panic, RouteError, RoutedCircuit, RouterOptions,
};
