//! Emits a named generator circuit as OpenQASM on stdout — the fixture
//! factory for CI smokes that need registers too large to check into the
//! repository as literal files (e.g. the 32-qubit adder behind the
//! tensor-network large-n smoke).
//!
//! ```text
//! gen_circuit <family> <size> [--optimize]
//! families: ghz | qft | clifford_adder | cuccaro_adder
//! ```
//!
//! `<size>` is the family's natural parameter (qubits for ghz/qft, operand
//! width for the adders — `clifford_adder(k)` acts on `2k + 2` qubits).
//! `--optimize` runs the exact optimizer first, so a golden/alternative
//! pair is two invocations apart.

use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: gen_circuit <family> <size> [--optimize]\n\
         families: ghz | qft | clifford_adder | cuccaro_adder"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (family, size, optimize) = match args.as_slice() {
        [family, size] => (family.as_str(), size, false),
        [family, size, flag] if flag == "--optimize" => (family.as_str(), size, true),
        _ => usage(),
    };
    let size: usize = size.parse().unwrap_or_else(|_| usage());
    let circuit = match family {
        "ghz" => qcirc::generators::ghz(size),
        "qft" => qcirc::generators::qft(size, true),
        "clifford_adder" => qcirc::generators::clifford_adder(size),
        "cuccaro_adder" => qcirc::generators::cuccaro_adder(size),
        _ => usage(),
    };
    let circuit = if optimize {
        qcirc::optimize::optimize(&circuit)
    } else {
        circuit
    };
    print!("{}", qcirc::qasm::write(&circuit));
}
