//! Adversarial cases: inputs crafted to exploit each component's known weak
//! spots. Every case either must be handled correctly or must fail the
//! *documented* way (no silent wrong answers).

use qcec::{
    check_equivalence, check_equivalence_default, Config, Criterion, Fallback, Outcome,
    StimulusStrategy,
};
use qcirc::{generators, Circuit};

/// The worst case of Section IV-A: the difference is a fully-controlled
/// gate, so only 2 of 2ⁿ columns differ. Random simulation is *expected* to
/// miss it; the fallback must then catch it.
#[test]
fn fully_controlled_difference_falls_through_to_the_complete_check() {
    let n = 10;
    let g = Circuit::new(n);
    let mut buggy = Circuit::new(n);
    buggy.mcx((0..n - 1).collect(), n - 1);
    let config = Config::new().with_simulations(5).with_seed(0);
    let result = check_equivalence(&g, &buggy, &config).unwrap();
    // Either simulation got lucky (possible) or the DD check decided.
    assert!(result.outcome.is_not_equivalent(), "{}", result.outcome);
}

/// Basis-dependent phases that look like a global phase on every individual
/// run — the trap for per-run up-to-phase comparison. Cross-run phase
/// tracking must catch it.
#[test]
fn basis_dependent_phase_error_is_caught() {
    let n = 6;
    let mut g = Circuit::new(n);
    for q in 0..n {
        g.cx(q, (q + 1) % n);
    }
    let mut buggy = g.clone();
    // T on a classical wire: each basis run sees only a global phase.
    buggy.insert(3, qcirc::Gate::single(qcirc::GateKind::T, 2));
    let result = check_equivalence_default(&g, &buggy).unwrap();
    assert!(result.outcome.is_not_equivalent(), "{}", result.outcome);
}

/// An *honest* global phase must NOT be reported as an error under the
/// physical criterion — and must be under the strict one.
#[test]
fn global_phase_only_difference_is_classified_correctly() {
    let mut g = Circuit::new(3);
    g.h(0).cx(0, 1).ccx(0, 1, 2);
    let mut phased = g.clone();
    // Global −1 via Rz(2π) (affects every column identically).
    phased.rz(2.0 * std::f64::consts::PI, 0);
    let physical = check_equivalence_default(&g, &phased).unwrap();
    assert!(physical.outcome.is_equivalent(), "{}", physical.outcome);
    let strict = check_equivalence(
        &g,
        &phased,
        &Config::new().with_criterion(Criterion::Strict),
    )
    .unwrap();
    assert!(strict.outcome.is_not_equivalent(), "{}", strict.outcome);
}

/// Dirty-ancilla decompositions are equivalence-preserving *as full
/// unitaries*; clean-ancilla-style garbage is not. The checker must
/// distinguish the two.
#[test]
fn ancilla_garbage_is_flagged() {
    let n = 4;
    // "Decomposition" that leaves garbage: compute into the ancilla and
    // forget to uncompute.
    let mut with_garbage = Circuit::new(n + 1);
    with_garbage.h(0).ccx(0, 1, n).cx(n, 2); // ancilla n holds q0·q1
    let mut reference = Circuit::new(n + 1);
    reference.h(0).ccx(0, 1, 2); // intended behaviour, ancilla idle
    let result = check_equivalence_default(&reference, &with_garbage).unwrap();
    assert!(result.outcome.is_not_equivalent());
}

/// Rotations that differ by exactly 4π are the same matrix; by 2π they
/// differ by a global phase. Neither may produce a false non-equivalence
/// under the physical criterion.
#[test]
fn rotation_period_aliasing() {
    let mut a = Circuit::new(2);
    a.rx(0.7, 0).cx(0, 1);
    let mut b4 = Circuit::new(2);
    b4.rx(0.7 + 4.0 * std::f64::consts::PI, 0).cx(0, 1);
    let strict = Config::new().with_criterion(Criterion::Strict);
    let r = check_equivalence(&a, &b4, &strict).unwrap();
    assert!(
        r.outcome.is_equivalent(),
        "4π-shifted rotation: {}",
        r.outcome
    );
    let mut b2 = Circuit::new(2);
    b2.rx(0.7 + 2.0 * std::f64::consts::PI, 0).cx(0, 1);
    let r = check_equivalence_default(&a, &b2).unwrap();
    assert!(
        r.outcome.is_equivalent(),
        "2π-shifted rotation: {}",
        r.outcome
    );
    let r = check_equivalence(&a, &b2, &strict).unwrap();
    assert!(r.outcome.is_not_equivalent(), "strict must see the −1");
}

/// A tiny rotation below any sane simulation tolerance: the simulations
/// cannot see it, but the DD fallback (interning at 1e−13) must.
#[test]
fn near_identity_rotation_is_decided_by_the_fallback() {
    let mut g = Circuit::new(3);
    g.h(0).cx(0, 1).cx(1, 2);
    let mut buggy = g.clone();
    buggy.rz(1e-6, 1); // far beyond fidelity tolerance per run? borderline:
                       // fidelity error ~ (1e-6)² = 1e-12 < 1e-8 → invisible
    let result = check_equivalence_default(&g, &buggy).unwrap();
    match result.outcome {
        // The complete check sees the distinct DD weights.
        Outcome::NotEquivalent { .. } => {}
        // Also acceptable: phases differing below the DD tolerance would be
        // equivalent-up-to-phase — but 1e-6 is far above 1e-13, so anything
        // else is a bug.
        other => panic!("near-identity rotation missed: {other}"),
    }
    // 2³ = 8 ≤ r → the stage enumerated every basis state and all passed.
    assert_eq!(result.stats.simulations_run, 8, "sims must all pass first");
}

/// Swapping two commuting gates is equivalence-preserving; the checker must
/// not be confused by textual reordering.
#[test]
fn commuting_reorder_is_equivalent() {
    let mut a = Circuit::new(4);
    a.h(0).rz(0.3, 1).cx(2, 3).t(1).cx(0, 1);
    let mut b = Circuit::new(4);
    b.cx(2, 3).h(0).t(1).rz(0.3, 1).cx(0, 1); // disjoint/diagonal commutations
    let strict = Config::new().with_criterion(Criterion::Strict);
    let r = check_equivalence(&a, &b, &strict).unwrap();
    assert!(r.outcome.is_equivalent(), "{}", r.outcome);
}

/// Zero simulations plus no fallback must answer "probably equivalent with
/// zero evidence" — never a hard verdict.
#[test]
fn no_evidence_no_verdict() {
    let g = generators::ghz(3);
    let mut buggy = g.clone();
    buggy.x(0);
    let config = Config::new()
        .with_simulations(0)
        .with_fallback(Fallback::None);
    let result = check_equivalence(&g, &buggy, &config).unwrap();
    match result.outcome {
        Outcome::ProbablyEquivalent {
            passed_simulations, ..
        } => assert_eq!(passed_simulations, 0),
        other => panic!("fabricated a verdict from nothing: {other}"),
    }
}

/// The stabilizer path and the dense path agree on Clifford adversaries.
#[test]
fn stabilizer_and_dense_agree_on_sign_errors() {
    let g = generators::ghz(8);
    let mut buggy = g.clone();
    buggy.z(5); // pure sign error
    let dense = check_equivalence_default(&g, &buggy).unwrap();
    assert!(dense.outcome.is_not_equivalent());
    let stab = qstab::check_clifford_equivalence(&g, &buggy, 10, 3).unwrap();
    assert!(matches!(stab, qstab::CliffordVerdict::NotEquivalent { .. }));
}

/// Circuits over different registers are a *user error*, not a verdict.
#[test]
fn register_mismatch_is_rejected_not_guessed() {
    let a = generators::ghz(3);
    let b = generators::ghz(5);
    assert!(check_equivalence_default(&a, &b).is_err());
}

// ---------------------------------------------------------------------------
// Escaped-fault corpus: guard-confirmed real faults that `r = 10` random
// basis-state simulations systematically miss (detection probability
// ~`2^{−c}` per run — Section IV-A's law at its worst). The pairs live in
// `tests/fixtures/escapees/` as `<name>.golden.qasm` / `<name>.faulty.qasm`,
// generated by `cargo run --release -p bench --bin escapees`; each faulty
// file records the stimulus seeds it escapes (`// escapes-seeds: …`).
// Any change to the stimulus strategy is measured against this corpus: a
// fixture "regression" here means the strategy now catches a fault it
// systematically missed before — delete the fixture only with that
// understanding.
// ---------------------------------------------------------------------------

/// One persisted escapee: the circuit pair plus the stimulus seeds the
/// fault is known to escape.
struct Escapee {
    name: String,
    golden: Circuit,
    faulty: Circuit,
    escapes_seeds: Vec<u64>,
}

fn escapee_corpus() -> Vec<Escapee> {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/escapees");
    let mut corpus = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("escapee fixture directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".golden.qasm"))
        .collect();
    entries.sort();
    for golden_path in entries {
        let name = golden_path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .trim_end_matches(".golden.qasm")
            .to_string();
        let faulty_path = golden_path
            .to_string_lossy()
            .replace(".golden.qasm", ".faulty.qasm");
        let golden_src = std::fs::read_to_string(&golden_path).unwrap();
        let faulty_src = std::fs::read_to_string(&faulty_path)
            .unwrap_or_else(|_| panic!("{name}: faulty half of the pair is missing"));
        let escapes_seeds = faulty_src
            .lines()
            .find_map(|l| l.strip_prefix("// escapes-seeds: "))
            .unwrap_or_else(|| panic!("{name}: no escapes-seeds header"))
            .split(',')
            .map(|s| s.trim().parse().expect("seed"))
            .collect();
        corpus.push(Escapee {
            name,
            golden: qcirc::qasm::parse(&golden_src).unwrap(),
            faulty: qcirc::qasm::parse(&faulty_src).unwrap(),
            escapes_seeds,
        });
    }
    corpus
}

/// The corpus holds the known V-chain CX drop plus at least three hunted
/// escapees, and every pair is a *real* fault: the complete DD check
/// (here via the guard) proves non-equivalence.
#[test]
fn escapee_corpus_is_populated_with_guard_confirmed_faults() {
    let corpus = escapee_corpus();
    assert!(
        corpus.len() >= 4,
        "corpus has only {} pairs — regenerate with `bench --bin escapees`",
        corpus.len()
    );
    assert!(
        corpus.iter().any(|e| e.name == "vchain_cx_drop"),
        "the known V-chain CX-drop escapee is missing"
    );
    for e in &corpus {
        let verdict =
            qfault::guard::classify(&e.golden, &e.faulty, &qfault::GuardOptions::default());
        assert!(
            verdict.is_fault(),
            "{}: expected a guard-confirmed fault, got {verdict}",
            e.name
        );
        assert!(
            !e.escapes_seeds.is_empty(),
            "{}: no escaping seeds recorded",
            e.name
        );
    }
}

/// Each persisted fault still escapes `r = 10` simulations for every
/// recorded stimulus seed: with the fallback disabled the flow can only
/// answer "probably equivalent" — the wrong answer, by design.
#[test]
fn escapees_still_escape_ten_simulations() {
    for e in &escapee_corpus() {
        for &seed in &e.escapes_seeds {
            let config = Config::new()
                .with_simulations(10)
                .with_seed(seed)
                .with_fallback(Fallback::None)
                .with_threads(1);
            let result = check_equivalence(&e.golden, &e.faulty, &config).unwrap();
            assert!(
                matches!(result.outcome, Outcome::ProbablyEquivalent { .. }),
                "{} (seed {seed}): stimulus strategy now detects this fault \
                 ({}) — the corpus contract changed, see the module comment",
                e.name,
                result.outcome
            );
        }
    }
}

/// Non-classical stimuli close the corpus's blind spot: for the *same*
/// seeds that basis stimuli are recorded to escape, product and stabilizer
/// stimuli detect every persisted fault within the same `r = 10` budget —
/// with the fallback disabled, so the detection is the simulation stage's
/// alone. Basis stimuli remain the documented miss
/// (`escapees_still_escape_ten_simulations` above).
#[test]
fn nonclassical_stimuli_detect_every_escapee() {
    for e in &escapee_corpus() {
        for strategy in [StimulusStrategy::Product, StimulusStrategy::Stabilizer] {
            for &seed in &e.escapes_seeds {
                let config = Config::new()
                    .with_simulations(10)
                    .with_seed(seed)
                    .with_stimuli(strategy)
                    .with_fallback(Fallback::None)
                    .with_threads(1);
                let result = check_equivalence(&e.golden, &e.faulty, &config).unwrap();
                let Outcome::NotEquivalent {
                    counterexample: Some(ce),
                } = &result.outcome
                else {
                    panic!(
                        "{} (seed {seed}, {strategy}): non-classical stimuli \
                         missed a fault basis stimuli escape ({})",
                        e.name, result.outcome
                    );
                };
                assert!(
                    ce.run <= 10,
                    "{} (seed {seed}, {strategy}): detection run {} out of budget",
                    e.name,
                    ce.run
                );
            }
        }
    }
}

/// The full flow (simulations + complete-check fallback) must catch every
/// escapee: this is precisely the case that justifies the fallback stage.
#[test]
fn full_flow_catches_every_escapee() {
    for e in &escapee_corpus() {
        let config = Config::new()
            .with_simulations(10)
            .with_seed(e.escapes_seeds[0])
            .with_threads(1);
        let result = check_equivalence(&e.golden, &e.faulty, &config).unwrap();
        assert!(
            result.outcome.is_not_equivalent(),
            "{}: full flow missed a persisted escapee ({})",
            e.name,
            result.outcome
        );
        // The counterexample did NOT come from the simulation stage for
        // the recorded seed — the complete check decided.
        assert!(
            matches!(
                result.outcome,
                Outcome::NotEquivalent {
                    counterexample: None
                }
            ),
            "{}: expected the complete check to decide, got {}",
            e.name,
            result.outcome
        );
    }
}
