//! Simulation backends: the engines that execute one equivalence probe.
//!
//! Every consumer of the simulation stage — the sequential flow
//! ([`run_simulations`](crate::run_simulations)), the
//! [`scheduler`](crate::scheduler) worker pool, counterexample replay in
//! [`diagnose`](crate::diagnose), and the fault-injection
//! [`campaign`](crate::campaign) — drives probes through one trait,
//! [`SimBackend`], and is therefore engine-agnostic. Four implementations
//! ship:
//!
//! * [`StatevectorBackend`] — dense `O(2ⁿ)` simulation via
//!   [`qsim::Simulator`]; fast and predictable, and the default;
//! * [`qdd::DdBackend`] — decision-diagram simulation (the paper's engine
//!   \[25\]): each stimulus is pushed through both circuits as vector-edge
//!   passes, exponentially compact whenever the intermediate states stay
//!   structured (basis-permutation arithmetic, Clifford prefixes, …);
//! * [`StabBackend`] — stabilizer/CHP tableau simulation via
//!   [`qstab::Tableau`]: `O(n²)` bit operations per gate when the probe
//!   (stimulus prefix and both circuits) is Clifford-only, with a
//!   transparent per-probe fallback to the dense engine otherwise — the
//!   polynomial-time fast path for Clifford-dominated workloads;
//! * [`MpsBackend`] — matrix-product-state simulation via [`qmpo::Mps`]:
//!   memory scales with the bond dimension `χ`, not `2ⁿ`, so probes keep
//!   running past the dense wall. Bond truncation (when `χ` would exceed
//!   [`Config::chi_max`](crate::Config::chi_max)) is reported through
//!   [`ProbeMetrics::truncation_error`] — `0.0` is a certificate that the
//!   probe was exact.
//!
//! [`BackendKind::Auto`](crate::BackendKind::Auto) is not a fifth engine
//! but a selector: [`auto_backend`] resolves it to one of the four from
//! the register width and gate mix before any probe runs.
//!
//! # Contract
//!
//! A probe is a **pure function** of `(G, G′, stimulus)`: backends must not
//! let hidden state leak between runs. The statevector backend reuses raw
//! buffers (overwritten wholesale each run); the DD backend pools one
//! hash-consing package in its workspace and [`qdd::Package::reset`]s it
//! to the freshly-constructed state before every probe, precisely because
//! interned edge weights *would* otherwise depend on probe order (the
//! reset is provably clean: pooled probes are bit-identical to
//! fresh-package probes). This purity is what lets the
//! scheduler replay pool results in stimulus order and reproduce the
//! sequential verdict bit for bit, for either engine.
//!
//! Cancellation granularity differs by engine and is part of the contract:
//! the statevector backend polls `keep_going` between gate applications,
//! while the DD backend polls once between its two circuit passes (a DD
//! pass has no cheap intermediate abort points). The stab backend polls
//! between tableau gate conjugations on its fast path and inherits the
//! dense granularity when it falls back. Either way a `false` poll yields
//! `None`, never a partial overlap.
//!
//! Probes may also run in **batches** ([`SimBackend::probe_batch_while`]):
//! the statevector backend streams the whole batch through lane-major
//! arena kernels (one gate decode per batch), every other engine loops its
//! single-stimulus path via the default implementation. Batch outcomes are
//! bit-identical to single probes per stimulus, so batching is invisible
//! to verdicts — which is why `Config::batch_size` is excluded from the
//! verdict fingerprint.

use qcirc::Circuit;
use qnum::Complex;
use qsim::{BatchWorkspace, ProbeWorkspace, Simulator};
use qstim::Stimulus;

use crate::config::{BackendKind, Config, Criterion};

/// What one completed probe hands back: the overlap plus backend-specific
/// effort instrumentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOutcome {
    /// The overlap `⟨u|u′⟩` of the two output states.
    pub overlap: Complex,
    /// Effort counters (zero for backends that do not track them).
    pub metrics: ProbeMetrics,
}

impl ProbeOutcome {
    /// An outcome carrying only an overlap (no effort counters).
    #[must_use]
    pub fn bare(overlap: Complex) -> Self {
        ProbeOutcome {
            overlap,
            metrics: ProbeMetrics::default(),
        }
    }
}

/// Per-probe effort counters. The dense backend's working set is fixed
/// (two `2ⁿ` buffers), so it reports zeros; the DD backend reports its
/// node-count instrumentation; the MPS backend reports its peak bond
/// dimension and accumulated truncation error.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProbeMetrics {
    /// Peak live decision-diagram nodes during the run — or, for the MPS
    /// backend, the peak bond dimension (0 for dense backends).
    pub peak_nodes: usize,
    /// Distinct complex values interned by the end of the run (0 for dense
    /// backends).
    pub complex_values: usize,
    /// Accumulated bond-truncation error of the MPS backend (sum of
    /// discarded squared-singular-value weight fractions across every
    /// truncated split). Exactly `0.0` when the probe was exact — for the
    /// MPS backend that is a certificate, not an approximation.
    pub truncation_error: f64,
}

/// One simulation engine, usable from the sequential flow and from worker
/// pools alike.
///
/// Implementations are shared by reference across scheduler workers, so
/// they must be `Send + Sync`; all per-run mutable state lives in the
/// per-thread [`Workspace`](SimBackend::Workspace).
pub trait SimBackend: Send + Sync {
    /// Per-thread scratch state: allocated once per worker (or once per
    /// sequential loop), reused across every probe on that thread.
    type Workspace: Send;

    /// The serializable selector naming this engine.
    fn kind(&self) -> BackendKind;

    /// Whether this engine can return approximate overlaps
    /// ([`ProbeMetrics::truncation_error`] `> 0`). Scheduler workers must
    /// not record a failure watermark for such engines: the per-run
    /// mismatch predicate uses the unwidened tolerance, while the ordered
    /// replay judges against a tolerance widened by the *cumulative*
    /// truncation — a worker-side flag the judge then rejects would skip
    /// simulations the sequential flow runs, breaking determinism.
    fn can_truncate(&self) -> bool {
        false
    }

    /// Allocates one thread's scratch state for `n_qubits`-qubit probes.
    fn workspace(&self, n_qubits: usize) -> Self::Workspace;

    /// Probes one stimulus: prepares it, pushes it through both circuits,
    /// and returns the overlap `⟨u|u′⟩` of the outputs.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget (dense backends never fail).
    fn probe(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut Self::Workspace,
    ) -> Result<ProbeOutcome, qdd::DdLimitError> {
        Ok(self
            .probe_while(g, g_prime, stimulus, workspace, &|| true)?
            .expect("unconditional probe cannot be cancelled"))
    }

    /// Like [`SimBackend::probe`], but polls `keep_going` at the engine's
    /// natural abort points and returns `None` as soon as it reads
    /// `false` — the cancellable variant for worker pools whose remaining
    /// stimuli become moot once a counterexample is found elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget.
    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut Self::Workspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError>;

    /// Probes a whole batch of stimuli, returning one outcome per stimulus
    /// in input order.
    ///
    /// The default implementation loops [`SimBackend::probe_while`], so
    /// every engine is batch-correct for free; engines with a genuinely
    /// batched execution path (the statevector backend's lane-major arena
    /// kernels) override it. The contract either way: outcome `i` is
    /// **bit-identical** to what a lone `probe_while` on `stimuli[i]`
    /// would return, and a `false` `keep_going` poll abandons the whole
    /// batch with `Ok(None)` — callers treat batch members as moot
    /// together, exactly like a cancelled single probe.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget on any member of the batch.
    fn probe_batch_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimuli: &[Stimulus],
        workspace: &mut Self::Workspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<Vec<ProbeOutcome>>, qdd::DdLimitError> {
        let mut outcomes = Vec::with_capacity(stimuli.len());
        for stimulus in stimuli {
            match self.probe_while(g, g_prime, stimulus, workspace, keep_going)? {
                Some(outcome) => outcomes.push(outcome),
                None => return Ok(None),
            }
        }
        Ok(Some(outcomes))
    }

    /// Replays one stimulus through both circuits and returns the two
    /// *dense* output amplitude vectors, for counterexample diagnosis.
    /// Output is `O(2ⁿ)` regardless of engine, so this is for registers
    /// that fit in memory.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget.
    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut Self::Workspace,
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError>;
}

/// The dense statevector engine: wraps [`qsim::Simulator`] and a reusable
/// pair of state buffers per thread.
///
/// # Examples
///
/// ```
/// use qcec::backend::{SimBackend, StatevectorBackend};
/// use qcec::Stimulus;
///
/// let g = qcirc::generators::ghz(3);
/// let backend = StatevectorBackend::new();
/// let mut ws = backend.workspace(3);
/// let out = backend.probe(&g, &g, &Stimulus::Basis(5), &mut ws).unwrap();
/// assert!((out.overlap.norm_sqr() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatevectorBackend {
    sim: Simulator,
}

impl StatevectorBackend {
    /// A backend running its kernels sequentially.
    #[must_use]
    pub fn new() -> Self {
        StatevectorBackend {
            sim: Simulator::new(),
        }
    }

    /// A backend splitting large kernels over `threads` OS threads — for
    /// the *sequential* flow, where the probe itself is the only
    /// parallelism available.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        StatevectorBackend {
            sim: Simulator::with_threads(threads),
        }
    }

    /// A backend for use *inside* scheduler workers: kernels stay
    /// sequential so an `N`-worker pool uses exactly `N` OS threads.
    #[must_use]
    pub fn for_worker() -> Self {
        StatevectorBackend {
            sim: Simulator::for_worker(),
        }
    }

    /// The backend the sequential flow derives from its configuration:
    /// kernel-parallel when `config.threads > 1` (the probe is then the
    /// only parallelism), sequential otherwise.
    #[must_use]
    pub fn for_flow(config: &Config) -> Self {
        if config.threads > 1 {
            StatevectorBackend::with_threads(config.threads)
        } else {
            StatevectorBackend::new()
        }
    }
}

/// Per-thread scratch for [`StatevectorBackend`]: the single-probe buffer
/// pair plus a lazily-allocated batched-probe arena.
///
/// The arena is allocated on the first batch of more than one stimulus and
/// then reused (growing to the largest batch seen), so single probes and
/// counterexample replay never pay for it.
#[derive(Debug, Clone)]
pub struct SvWorkspace {
    probe: ProbeWorkspace,
    batch: Option<BatchWorkspace>,
}

impl SvWorkspace {
    /// Creates a workspace for `n_qubits`-qubit probes.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero or exceeds
    /// [`qsim::StateVector::MAX_QUBITS`].
    #[must_use]
    pub fn new(n_qubits: usize) -> Self {
        SvWorkspace {
            probe: ProbeWorkspace::new(n_qubits),
            batch: None,
        }
    }

    /// The register size the buffers are allocated for.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.probe.n_qubits()
    }

    fn batch_arena(&mut self) -> &mut BatchWorkspace {
        let n = self.probe.n_qubits();
        self.batch.get_or_insert_with(|| BatchWorkspace::new(n))
    }
}

impl SimBackend for StatevectorBackend {
    type Workspace = SvWorkspace;

    fn kind(&self) -> BackendKind {
        BackendKind::Statevector
    }

    fn workspace(&self, n_qubits: usize) -> SvWorkspace {
        SvWorkspace::new(n_qubits)
    }

    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut SvWorkspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError> {
        let prefix = stimulus.prefix_circuit();
        Ok(self
            .sim
            .probe_stimulus_while(
                g,
                g_prime,
                prefix.as_ref(),
                stimulus.basis_state(),
                &mut workspace.probe,
                keep_going,
            )
            .map(ProbeOutcome::bare))
    }

    /// The true batched path: all stimuli of the batch stream through the
    /// lane-major arena kernels of
    /// [`qsim::Simulator::probe_stimuli_batch_while`], decoding each gate
    /// once per batch instead of once per stimulus. Per lane the float
    /// operations match the single-stimulus path exactly, so the
    /// bit-identity contract of [`SimBackend::probe_batch_while`] holds by
    /// construction. Batches of one stimulus take the single-probe path
    /// unchanged (and never allocate the arena).
    fn probe_batch_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimuli: &[Stimulus],
        workspace: &mut SvWorkspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<Vec<ProbeOutcome>>, qdd::DdLimitError> {
        if stimuli.len() <= 1 {
            let mut outcomes = Vec::with_capacity(stimuli.len());
            for stimulus in stimuli {
                match self.probe_while(g, g_prime, stimulus, workspace, keep_going)? {
                    Some(outcome) => outcomes.push(outcome),
                    None => return Ok(None),
                }
            }
            return Ok(Some(outcomes));
        }
        let prefixes: Vec<Option<Circuit>> = stimuli.iter().map(Stimulus::prefix_circuit).collect();
        let lanes: Vec<(u64, Option<&Circuit>)> = stimuli
            .iter()
            .zip(&prefixes)
            .map(|(s, p)| (s.basis_state(), p.as_ref()))
            .collect();
        Ok(self
            .sim
            .probe_stimuli_batch_while(g, g_prime, &lanes, workspace.batch_arena(), keep_going)
            .map(|overlaps| overlaps.iter().copied().map(ProbeOutcome::bare).collect()))
    }

    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut SvWorkspace,
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError> {
        // After a probe the workspace buffers hold exactly the two output
        // states.
        self.probe(g, g_prime, stimulus, workspace)?;
        Ok((
            workspace.probe.left().amplitudes().to_vec(),
            workspace.probe.right().amplitudes().to_vec(),
        ))
    }
}

/// The decision-diagram engine ([`qdd::DdBackend`]) seen through the flow's
/// probe trait.
///
/// The workspace is a *pooled* [`qdd::Package`]: allocated once per worker
/// and [`reset`](qdd::Package::reset) before every probe, which keeps the
/// arena and table allocations warm without sacrificing purity — a reset
/// package is observationally identical to a fresh one, so pooled probes
/// return results bitwise equal to the historical fresh-package path.
impl SimBackend for qdd::DdBackend {
    type Workspace = qdd::Package;

    fn kind(&self) -> BackendKind {
        BackendKind::DecisionDiagram
    }

    fn workspace(&self, n_qubits: usize) -> qdd::Package {
        qdd::Package::with_node_limit(n_qubits, self.node_limit())
    }

    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut qdd::Package,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError> {
        let prefix = stimulus.prefix_circuit();
        Ok(self
            .probe_while_in(
                workspace,
                g,
                g_prime,
                prefix.as_ref(),
                stimulus.basis_state(),
                keep_going,
            )?
            .map(|run| ProbeOutcome {
                overlap: run.overlap,
                metrics: ProbeMetrics {
                    peak_nodes: run.peak_nodes,
                    complex_values: run.complex_values,
                    truncation_error: 0.0,
                },
            }))
    }

    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut qdd::Package,
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError> {
        workspace.reset();
        let input = {
            let b = workspace.basis_vedge(stimulus.basis_state())?;
            match stimulus.prefix_circuit() {
                None => b,
                Some(prefix) => workspace.apply_to_vedge(&prefix, b)?,
            }
        };
        let a = workspace.apply_to_vedge(g, input)?;
        let b = workspace.apply_to_vedge(g_prime, input)?;
        Ok((workspace.to_statevector(a), workspace.to_statevector(b)))
    }
}

/// The stabilizer/CHP tableau engine: polynomial-time probes on
/// Clifford-only circuit pairs, dense fallback everywhere else.
///
/// Before touching any state the backend classifies the whole probe — the
/// stimulus prefix circuit (if any) and both circuits — with
/// [`qcirc::Gate::is_clifford`]. When everything is Clifford the probe runs
/// as `O(n²)`-per-gate tableau conjugations ([`qstab::Tableau`]) and the
/// overlap is the deterministic, measurement-free inner-product magnitude
/// `|⟨u|u′⟩|` ([`qstab::inner_product_magnitude`]), reported as a real
/// number (a tableau carries no global phase). On the first non-Clifford
/// gate the *entire* probe falls back to the wrapped [`StatevectorBackend`]
/// with the identical stimulus, so verdicts never depend on which path ran.
///
/// Two semantic consequences, both part of the contract:
///
/// * Stabilizer overlap magnitudes are exactly `0` or `2^{−k/2}` — the
///   same values (within float tolerance) the dense engines report for the
///   same Clifford probes — so per-run fidelity verdicts and decisive run
///   indices match the other backends.
/// * The tableau cannot represent a global phase, so under
///   [`Criterion::Strict`] the fast path would be unsound (it cannot
///   distinguish `U` from `−U`). [`StabBackend::for_flow`] therefore
///   disables the tableau path entirely under `Strict`; every probe runs
///   dense. Under the default [`Criterion::UpToGlobalPhase`] the judge's
///   cross-run phase-consistency check still operates on the fallback
///   path; on the tableau path all overlaps are real non-negative, which
///   is mutually consistent by construction. Within one flow the path is
///   uniform across runs — it depends only on the gate sets of `G`, `G′`
///   and the stimulus *strategy* (basis and stabilizer prefixes are
///   Clifford, product prefixes never are) — so the two regimes never mix.
///
/// # Examples
///
/// ```
/// use qcec::backend::{SimBackend, StabBackend};
/// use qcec::Stimulus;
///
/// // 32 qubits: far beyond dense reach, trivial for the tableau path.
/// let g = qcirc::generators::clifford_adder(15);
/// let backend = StabBackend::new();
/// let mut ws = backend.workspace(g.n_qubits());
/// let out = backend.probe(&g, &g, &Stimulus::Basis(77), &mut ws).unwrap();
/// assert_eq!(out.overlap.re, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct StabBackend {
    dense: StatevectorBackend,
    tableau_enabled: bool,
}

impl Default for StabBackend {
    fn default() -> Self {
        StabBackend::new()
    }
}

impl StabBackend {
    /// A backend whose dense fallback runs its kernels sequentially.
    #[must_use]
    pub fn new() -> Self {
        StabBackend {
            dense: StatevectorBackend::new(),
            tableau_enabled: true,
        }
    }

    /// A backend for use *inside* scheduler workers: the dense fallback
    /// stays sequential so an `N`-worker pool uses exactly `N` OS threads.
    #[must_use]
    pub fn for_worker() -> Self {
        StabBackend {
            dense: StatevectorBackend::for_worker(),
            tableau_enabled: true,
        }
    }

    /// The backend a scheduler worker derives from the flow configuration:
    /// [`StabBackend::for_worker`]'s sequential dense fallback combined
    /// with [`StabBackend::for_flow`]'s criterion gating of the tableau
    /// fast path.
    #[must_use]
    pub fn for_scheduled(config: &Config) -> Self {
        StabBackend {
            dense: StatevectorBackend::for_worker(),
            tableau_enabled: matches!(config.criterion, Criterion::UpToGlobalPhase),
        }
    }

    /// The backend the sequential flow derives from its configuration: the
    /// dense fallback follows [`StatevectorBackend::for_flow`], and the
    /// tableau fast path is enabled only under
    /// [`Criterion::UpToGlobalPhase`] (see the type docs for why `Strict`
    /// must run dense).
    #[must_use]
    pub fn for_flow(config: &Config) -> Self {
        StabBackend {
            dense: StatevectorBackend::for_flow(config),
            tableau_enabled: matches!(config.criterion, Criterion::UpToGlobalPhase),
        }
    }
}

/// Scratch state for [`StabBackend`] probes.
///
/// The tableau path allocates its `O(n²)` bits per probe (cloning a
/// tableau is how the two branches share the prepared stimulus), so the
/// workspace only carries the dense fallback's buffers — and those are
/// allocated *lazily*, on the first probe that actually falls back. This
/// is load-bearing: at the register widths the tableau path unlocks
/// (`n = 32` and beyond), eagerly allocating two `2ⁿ` dense buffers would
/// exhaust memory before the first probe ran.
pub struct StabWorkspace {
    n_qubits: usize,
    dense: Option<SvWorkspace>,
}

impl std::fmt::Debug for StabWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StabWorkspace")
            .field("n_qubits", &self.n_qubits)
            .field("dense_allocated", &self.dense.is_some())
            .finish()
    }
}

impl StabWorkspace {
    fn dense_buffers(&mut self) -> &mut SvWorkspace {
        let n = self.n_qubits;
        self.dense.get_or_insert_with(|| SvWorkspace::new(n))
    }
}

/// How one tableau fast-path attempt ended.
enum TableauProbe {
    /// The whole probe was Clifford; here is the overlap.
    Done(ProbeOutcome),
    /// A `keep_going` poll read `false` mid-run.
    Cancelled,
    /// A non-Clifford gate was found — run the probe on the dense engine.
    NonClifford,
}

fn tableau_probe(
    g: &Circuit,
    g_prime: &Circuit,
    stimulus: &Stimulus,
    keep_going: &dyn Fn() -> bool,
) -> TableauProbe {
    let prefix = stimulus.prefix_circuit();
    let all_clifford = |c: &Circuit| c.gates().iter().all(qcirc::Gate::is_clifford);
    if !all_clifford(g)
        || !all_clifford(g_prime)
        || prefix.as_ref().is_some_and(|p| !all_clifford(p))
    {
        return TableauProbe::NonClifford;
    }
    let mut left = qstab::Tableau::basis(g.n_qubits(), stimulus.basis_state());
    if let Some(prefix) = &prefix {
        for gate in prefix.gates() {
            if !keep_going() {
                return TableauProbe::Cancelled;
            }
            // The up-front scan used qcirc's classifier; qstab's own
            // classifier is the authority on what it can conjugate, so an
            // error here demotes the probe to the dense path rather than
            // panicking on a (theoretically impossible) disagreement.
            if qstab::apply_gate(&mut left, gate).is_err() {
                return TableauProbe::NonClifford;
            }
        }
    }
    let mut right = left.clone();
    for (tableau, circuit) in [(&mut left, g), (&mut right, g_prime)] {
        for gate in circuit.gates() {
            if !keep_going() {
                return TableauProbe::Cancelled;
            }
            if qstab::apply_gate(tableau, gate).is_err() {
                return TableauProbe::NonClifford;
            }
        }
    }
    let magnitude = qstab::inner_product_magnitude(&left, &right);
    TableauProbe::Done(ProbeOutcome::bare(Complex::new(magnitude, 0.0)))
}

impl SimBackend for StabBackend {
    type Workspace = StabWorkspace;

    fn kind(&self) -> BackendKind {
        BackendKind::Stab
    }

    fn workspace(&self, n_qubits: usize) -> StabWorkspace {
        StabWorkspace {
            n_qubits,
            dense: None,
        }
    }

    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut StabWorkspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError> {
        if self.tableau_enabled {
            match tableau_probe(g, g_prime, stimulus, keep_going) {
                TableauProbe::Done(outcome) => return Ok(Some(outcome)),
                TableauProbe::Cancelled => return Ok(None),
                TableauProbe::NonClifford => {}
            }
        }
        self.dense
            .probe_while(g, g_prime, stimulus, workspace.dense_buffers(), keep_going)
    }

    /// Replays through the dense fallback unconditionally: replay output is
    /// `O(2ⁿ)` amplitudes regardless of engine, so there is nothing for the
    /// tableau to save — counterexample diagnosis only happens on registers
    /// that fit in dense memory anyway.
    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut StabWorkspace,
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError> {
        self.dense
            .replay(g, g_prime, stimulus, workspace.dense_buffers())
    }
}

/// The matrix-product-state tensor-network engine ([`qmpo::Mps`]): probe
/// memory scales with the entanglement the circuits build (bond
/// dimension), not with `2ⁿ`, so registers far past the dense wall stay
/// reachable whenever the states remain weakly entangled.
///
/// Each probe evolves the stimulus as an MPS through both circuits and
/// reports the normalized inner product of the two outputs. Two-site gate
/// applications split by SVD under the configured bond cap `χ`
/// ([`Config::chi_max`]); while no split exceeds the cap the probe is
/// *exact* and [`ProbeMetrics::truncation_error`] is identically `0.0` —
/// once truncation occurs the accumulated discarded weight is reported and
/// the judge widens its tolerance (and the flow downgrades "no
/// counterexample" verdicts to probable equivalence).
///
/// Cancellation is polled between gate applications, like the dense
/// engine.
///
/// # Examples
///
/// ```
/// use qcec::backend::{MpsBackend, SimBackend};
/// use qcec::Stimulus;
///
/// // 32 qubits: far beyond dense reach; bond dimension stays tiny.
/// let g = qcirc::generators::ghz(32);
/// let backend = MpsBackend::new(64);
/// let mut ws = backend.workspace(32);
/// let out = backend.probe(&g, &g, &Stimulus::Basis(5), &mut ws).unwrap();
/// assert!((out.overlap.norm_sqr() - 1.0).abs() < 1e-9);
/// assert_eq!(out.metrics.truncation_error, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct MpsBackend {
    chi_max: usize,
}

impl Default for MpsBackend {
    fn default() -> Self {
        MpsBackend::new(qmpo::DEFAULT_CHI_MAX)
    }
}

impl MpsBackend {
    /// A backend truncating two-site splits to at most `chi_max` singular
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `chi_max` is zero.
    #[must_use]
    pub fn new(chi_max: usize) -> Self {
        assert!(chi_max > 0, "need a positive bond-dimension cap");
        MpsBackend { chi_max }
    }

    /// The backend the flow derives from its configuration (honouring
    /// [`Config::chi_max`](crate::Config::chi_max)).
    #[must_use]
    pub fn for_flow(config: &Config) -> Self {
        MpsBackend::new(config.chi_max)
    }

    /// The configured bond-dimension cap.
    #[must_use]
    pub fn chi_max(&self) -> usize {
        self.chi_max
    }

    /// Prepares the stimulus as an MPS, polling `keep_going` per prefix
    /// gate. `None` = cancelled.
    fn prepare(
        &self,
        n_qubits: usize,
        stimulus: &Stimulus,
        keep_going: &dyn Fn() -> bool,
    ) -> Option<qmpo::Mps> {
        let mut base = qmpo::Mps::basis_state(n_qubits, stimulus.basis_state());
        if let Some(prefix) = stimulus.prefix_circuit() {
            for gate in prefix.gates() {
                if !keep_going() {
                    return None;
                }
                base.apply_gate(gate, self.chi_max);
            }
        }
        Some(base)
    }
}

impl SimBackend for MpsBackend {
    /// Site tensors are `O(n · χ²)` and rebuilt per probe; no scratch
    /// state survives between runs (the purity contract for free).
    type Workspace = ();

    fn kind(&self) -> BackendKind {
        BackendKind::Mps
    }

    fn can_truncate(&self) -> bool {
        true
    }

    fn workspace(&self, _n_qubits: usize) {}

    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        (): &mut (),
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError> {
        let Some(base) = self.prepare(g.n_qubits(), stimulus, keep_going) else {
            return Ok(None);
        };
        // The stimulus-preparation error is shared by both branches —
        // count it once, not twice.
        let base_error = base.truncation_error();
        let mut right = base.clone();
        let mut left = base;
        for gate in g.gates() {
            if !keep_going() {
                return Ok(None);
            }
            left.apply_gate(gate, self.chi_max);
        }
        for gate in g_prime.gates() {
            if !keep_going() {
                return Ok(None);
            }
            right.apply_gate(gate, self.chi_max);
        }
        // Truncation lets the global norm drift, so normalize: the overlap
        // reported is that of the two *unit* output states. On exact runs
        // both norms are 1 to machine precision and this is a no-op.
        let norm = left.norm() * right.norm();
        let overlap = if norm > 0.0 {
            left.inner_product(&right) * (1.0 / norm)
        } else {
            Complex::ZERO
        };
        Ok(Some(ProbeOutcome {
            overlap,
            metrics: ProbeMetrics {
                peak_nodes: left.peak_bond().max(right.peak_bond()),
                complex_values: 0,
                truncation_error: left.truncation_error() + right.truncation_error() - base_error,
            },
        }))
    }

    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        (): &mut (),
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError> {
        let always = || true;
        let base = self
            .prepare(g.n_qubits(), stimulus, &always)
            .expect("unconditional prepare cannot be cancelled");
        let mut right = base.clone();
        let mut left = base;
        for gate in g.gates() {
            left.apply_gate(gate, self.chi_max);
        }
        for gate in g_prime.gates() {
            right.apply_gate(gate, self.chi_max);
        }
        let n = g.n_qubits();
        let read = |m: &qmpo::Mps| (0..1u64 << n).map(|b| m.amplitude(b)).collect();
        Ok((read(&left), read(&right)))
    }
}

/// The DD engine the flow derives from its configuration (honouring
/// [`Config::dd_node_limit`](crate::Config::dd_node_limit)).
#[must_use]
pub fn dd_for_flow(config: &Config) -> qdd::DdBackend {
    qdd::DdBackend::with_node_limit(config.dd_node_limit)
}

/// Resolves [`BackendKind::Auto`] from the register width and gate mix of
/// the circuit pair. Never returns `Auto` (nor takes scheduling into
/// account — the choice is a pure function of the circuits, resolved once
/// per flow invocation and logged via
/// [`RunEvent::BackendSelected`](crate::scheduler::RunEvent::BackendSelected)):
///
/// - both circuits Clifford-only → [`BackendKind::Stab`] — the tableau
///   probe is polynomial regardless of width;
/// - `n ≤ 8` → [`BackendKind::Statevector`] — dense vectors of ≤ 256
///   amplitudes beat every structured representation's overhead;
/// - `n ≤ 24` → [`BackendKind::DecisionDiagram`] — the regime the paper
///   benchmarks, where DDs exploit redundancy without the 2ⁿ wall biting;
/// - otherwise → [`BackendKind::Mps`] — past the dense wall only the
///   tensor network keeps probing (with truncation surfaced as evidence,
///   never silently).
///
/// # Examples
///
/// ```
/// use qcec::{auto_backend, BackendKind};
/// use qcirc::generators;
///
/// let ghz = generators::ghz(30);
/// assert_eq!(auto_backend(&ghz, &ghz), BackendKind::Stab);
/// let qft = generators::qft(4, true);
/// assert_eq!(auto_backend(&qft, &qft), BackendKind::Statevector);
/// ```
#[must_use]
pub fn auto_backend(g: &Circuit, g_prime: &Circuit) -> BackendKind {
    let clifford_only = |c: &Circuit| c.gates().iter().all(qcirc::Gate::is_clifford);
    if clifford_only(g) && clifford_only(g_prime) {
        return BackendKind::Stab;
    }
    let n = g.n_qubits().max(g_prime.n_qubits());
    if n <= 8 {
        BackendKind::Statevector
    } else if n <= 24 {
        BackendKind::DecisionDiagram
    } else {
        BackendKind::Mps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    fn probe_on<B: SimBackend>(
        backend: &B,
        g: &Circuit,
        g_prime: &Circuit,
        s: &Stimulus,
    ) -> Complex {
        let mut ws = backend.workspace(g.n_qubits());
        backend.probe(g, g_prime, s, &mut ws).unwrap().overlap
    }

    #[test]
    fn backends_agree_on_basis_probes() {
        let g = generators::grover(4, 6, 2);
        let mut buggy = g.clone();
        buggy.z(2);
        let sv = StatevectorBackend::new();
        let dd = qdd::DdBackend::new();
        for basis in [0u64, 3, 9, 15] {
            let s = Stimulus::Basis(basis);
            let a = probe_on(&sv, &g, &buggy, &s);
            let b = probe_on(&dd, &g, &buggy, &s);
            assert!((a - b).norm_sqr() < 1e-18, "basis {basis}: {a} vs {b}");
        }
    }

    #[test]
    fn backends_agree_on_prefixed_stimuli() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(1);
        let config = Config::default()
            .with_stimuli(crate::StimulusStrategy::Stabilizer)
            .with_simulations(4)
            .with_seed(13);
        let sv = StatevectorBackend::new();
        let dd = qdd::DdBackend::new();
        for s in crate::draw_stimuli(4, &config) {
            let a = probe_on(&sv, &g, &buggy, &s);
            let b = probe_on(&dd, &g, &buggy, &s);
            assert!((a - b).norm_sqr() < 1e-18, "{}: {a} vs {b}", s.kind());
        }
    }

    #[test]
    fn dd_metrics_are_populated_and_sv_metrics_are_zero() {
        let g = generators::ghz(6);
        let s = Stimulus::Basis(0);
        let sv = StatevectorBackend::new();
        let mut ws = sv.workspace(6);
        let out = sv.probe(&g, &g, &s, &mut ws).unwrap();
        assert_eq!(out.metrics, ProbeMetrics::default());
        let dd = qdd::DdBackend::new();
        let out = SimBackend::probe(&dd, &g, &g, &s, &mut SimBackend::workspace(&dd, 6)).unwrap();
        assert!(out.metrics.peak_nodes > 0);
        assert!(out.metrics.complex_values > 0);
    }

    #[test]
    fn replay_returns_matching_dense_outputs() {
        let g = generators::w_state(3);
        let mut buggy = g.clone();
        buggy.x(1);
        let s = Stimulus::Basis(0);
        let sv = StatevectorBackend::new();
        let dd = qdd::DdBackend::new();
        let (a_sv, b_sv) = sv.replay(&g, &buggy, &s, &mut sv.workspace(3)).unwrap();
        let (a_dd, b_dd) = dd
            .replay(&g, &buggy, &s, &mut SimBackend::workspace(&dd, 3))
            .unwrap();
        assert_eq!(a_sv.len(), 8);
        for (x, y) in a_sv.iter().zip(&a_dd) {
            assert!((*x - *y).norm_sqr() < 1e-18);
        }
        for (x, y) in b_sv.iter().zip(&b_dd) {
            assert!((*x - *y).norm_sqr() < 1e-18);
        }
    }

    #[test]
    fn cancelled_probe_is_none_on_both_backends() {
        let g = generators::qft(5, true);
        let s = Stimulus::Basis(7);
        let never = || false;
        let sv = StatevectorBackend::new();
        let out = sv
            .probe_while(&g, &g, &s, &mut sv.workspace(5), &never)
            .unwrap();
        assert!(out.is_none());
        let dd = qdd::DdBackend::new();
        let mut ws = SimBackend::workspace(&dd, 5);
        let out = SimBackend::probe_while(&dd, &g, &g, &s, &mut ws, &never).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn dd_node_budget_errors_surface_through_the_trait() {
        let g = generators::supremacy_2d(3, 4, 12, 1);
        let dd = dd_for_flow(&Config::default().with_dd_node_limit(50));
        let mut ws = SimBackend::workspace(&dd, g.n_qubits());
        let e = SimBackend::probe(&dd, &g, &g, &Stimulus::Basis(0), &mut ws).unwrap_err();
        assert_eq!(e.node_limit, 50);
    }

    #[test]
    fn stab_matches_dense_overlap_magnitudes_on_clifford_probes() {
        let g = generators::clifford_adder(4);
        let mut buggy = g.clone();
        buggy.z(3);
        let sv = StatevectorBackend::new();
        let stab = StabBackend::new();
        let config = Config::default()
            .with_stimuli(crate::StimulusStrategy::Stabilizer)
            .with_simulations(4)
            .with_seed(21);
        let mut stimuli = crate::draw_stimuli(g.n_qubits(), &config);
        stimuli.push(Stimulus::Basis(37));
        for s in &stimuli {
            let a = probe_on(&sv, &g, &buggy, s);
            let b = probe_on(&stab, &g, &buggy, s);
            assert!(
                (a.abs() - b.abs()).abs() < 1e-9,
                "{}: |{a}| vs |{b}|",
                s.kind()
            );
            assert_eq!(b.im, 0.0, "tableau overlaps are real");
        }
    }

    #[test]
    fn stab_falls_back_to_dense_on_non_clifford_probes() {
        // A T gate forces the fallback; the full complex overlap (phase
        // included) must then match the dense engine bit for bit.
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(2);
        let sv = StatevectorBackend::new();
        let stab = StabBackend::new();
        for basis in [0u64, 5, 11] {
            let s = Stimulus::Basis(basis);
            let a = probe_on(&sv, &g, &buggy, &s);
            let b = probe_on(&stab, &g, &buggy, &s);
            assert!((a - b).norm_sqr() < 1e-18, "basis {basis}: {a} vs {b}");
        }
    }

    #[test]
    fn stab_probes_32_qubits_where_dense_cannot_run() {
        // 2³² amplitudes is 64 GiB of state — the lazy workspace must not
        // allocate it, and the tableau path must finish in milliseconds.
        let g = generators::clifford_adder(15);
        assert_eq!(g.n_qubits(), 32);
        let mut buggy = g.clone();
        buggy.x(9);
        let stab = StabBackend::new();
        let mut ws = stab.workspace(32);
        let same = stab.probe(&g, &g, &Stimulus::Basis(123), &mut ws).unwrap();
        assert_eq!(same.overlap, Complex::new(1.0, 0.0));
        let diff = stab
            .probe(&g, &buggy, &Stimulus::Basis(123), &mut ws)
            .unwrap();
        assert!(diff.overlap.norm_sqr() < 1.0 - 1e-9);
        assert!(
            format!("{ws:?}").contains("dense_allocated: false"),
            "a Clifford-only probe must never touch dense buffers: {ws:?}"
        );
    }

    #[test]
    fn stab_cancellation_yields_none_on_both_paths() {
        let never = || false;
        let stab = StabBackend::new();
        // Tableau path.
        let g = generators::ghz(6);
        let out = stab
            .probe_while(&g, &g, &Stimulus::Basis(3), &mut stab.workspace(6), &never)
            .unwrap();
        assert!(out.is_none());
        // Fallback path.
        let g = generators::qft(5, true);
        let out = stab
            .probe_while(&g, &g, &Stimulus::Basis(7), &mut stab.workspace(5), &never)
            .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn strict_criterion_disables_the_tableau_path() {
        // Z on |1⟩: ⟨u|u′⟩ = −1. Up to global phase that is agreement; the
        // tableau would report 1.0 and could not see the sign, so under
        // Strict the flow's backend must probe densely and observe −1.
        let g = qcirc::Circuit::new(1);
        let mut phased = qcirc::Circuit::new(1);
        phased.z(0);
        let s = Stimulus::Basis(1);
        let strict = StabBackend::for_flow(&Config::default().with_criterion(Criterion::Strict));
        let overlap = probe_on(&strict, &g, &phased, &s);
        assert!((overlap - Complex::new(-1.0, 0.0)).norm_sqr() < 1e-18);
        let phase_free = StabBackend::for_flow(&Config::default());
        let overlap = probe_on(&phase_free, &g, &phased, &s);
        assert_eq!(overlap, Complex::new(1.0, 0.0));
    }

    #[test]
    fn stab_replay_produces_dense_outputs() {
        let g = generators::ghz(3);
        let mut buggy = g.clone();
        buggy.x(1);
        let stab = StabBackend::new();
        let sv = StatevectorBackend::new();
        let s = Stimulus::Basis(2);
        let (a, b) = stab.replay(&g, &buggy, &s, &mut stab.workspace(3)).unwrap();
        let (a_sv, b_sv) = sv.replay(&g, &buggy, &s, &mut sv.workspace(3)).unwrap();
        assert_eq!(a, a_sv);
        assert_eq!(b, b_sv);
    }

    #[test]
    fn mps_matches_dense_overlaps_on_exact_probes() {
        // n = 4 never exceeds the default bond cap, so the MPS overlap
        // (phase included) must match the dense engine to numerical noise.
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(1);
        let sv = StatevectorBackend::new();
        let mps = MpsBackend::default();
        let config = Config::default()
            .with_stimuli(crate::StimulusStrategy::Stabilizer)
            .with_simulations(4)
            .with_seed(13);
        let mut stimuli = crate::draw_stimuli(4, &config);
        stimuli.push(Stimulus::Basis(11));
        for s in &stimuli {
            let a = probe_on(&sv, &g, &buggy, s);
            let b = probe_on(&mps, &g, &buggy, s);
            assert!((a - b).norm_sqr() < 1e-18, "{}: {a} vs {b}", s.kind());
        }
    }

    #[test]
    fn mps_metrics_report_bond_growth_and_truncation() {
        // Not QFT: on a *basis* input every controlled phase sees a
        // classical control, so a QFT probe stays a product state. The
        // GHZ ladder genuinely entangles from |0…0⟩.
        let g = generators::ghz(6);
        let mps = MpsBackend::default();
        let s = Stimulus::Basis(0);
        let out = SimBackend::probe(&mps, &g, &g, &s, &mut ()).unwrap();
        assert!(out.metrics.peak_nodes > 1, "entangling gates grow bonds");
        assert_eq!(
            out.metrics.truncation_error, 0.0,
            "χ = 64 is exact at n = 6"
        );
        // χ = 1 cannot represent the entangled intermediate states: the
        // probe must say so instead of silently pretending exactness.
        let crushed = MpsBackend::new(1);
        let out = SimBackend::probe(&crushed, &g, &g, &s, &mut ()).unwrap();
        assert!(out.metrics.truncation_error > 0.0);
    }

    #[test]
    fn mps_probes_32_qubits_past_the_dense_wall() {
        // Same scale as the tableau test above, but with no Clifford
        // restriction: 2³² amplitudes never materialise because the GHZ
        // ladder keeps χ = 2.
        let g = generators::ghz(32);
        let mut buggy = g.clone();
        buggy.t(30);
        let mps = MpsBackend::default();
        let same = SimBackend::probe(&mps, &g, &g, &Stimulus::Basis(77), &mut ()).unwrap();
        assert!((same.overlap.norm_sqr() - 1.0).abs() < 1e-9);
        assert_eq!(same.metrics.truncation_error, 0.0);
        // A T on the GHZ state phases only the |1…1⟩ branch:
        // |⟨u|u′⟩|² = |(1 + e^{iπ/4})/2|² ≈ 0.854, a real fidelity deficit.
        let diff = SimBackend::probe(&mps, &g, &buggy, &Stimulus::Basis(77), &mut ()).unwrap();
        assert!(diff.overlap.norm_sqr() < 1.0 - 1e-3);
        assert_eq!(diff.metrics.truncation_error, 0.0);
    }

    #[test]
    fn mps_cancellation_yields_none() {
        let never = || false;
        let mps = MpsBackend::default();
        let g = generators::qft(5, true);
        let out = mps
            .probe_while(&g, &g, &Stimulus::Basis(7), &mut (), &never)
            .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn batched_probes_match_single_probes_bitwise() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(1);
        let config = Config::default()
            .with_stimuli(crate::StimulusStrategy::Stabilizer)
            .with_simulations(6)
            .with_seed(5);
        let stimuli = crate::draw_stimuli(4, &config);
        // The sv override takes the arena path for batches ≥ 2 and must be
        // bit-identical to lone probes.
        let sv = StatevectorBackend::new();
        let mut ws = sv.workspace(4);
        for k in [1usize, 2, stimuli.len()] {
            let batch = sv
                .probe_batch_while(&g, &buggy, &stimuli[..k], &mut ws, &|| true)
                .unwrap()
                .expect("not cancelled");
            for (s, got) in stimuli[..k].iter().zip(&batch) {
                let want = sv.probe(&g, &buggy, s, &mut ws).unwrap();
                assert_eq!(got.overlap, want.overlap, "k={k} {}", s.kind());
            }
        }
        // The default implementation (dd here) loops the single path.
        let dd = qdd::DdBackend::new();
        let mut dd_ws = SimBackend::workspace(&dd, 4);
        let batch = SimBackend::probe_batch_while(&dd, &g, &buggy, &stimuli, &mut dd_ws, &|| true)
            .unwrap()
            .expect("not cancelled");
        for (s, got) in stimuli.iter().zip(&batch) {
            let want = SimBackend::probe(&dd, &g, &buggy, s, &mut dd_ws).unwrap();
            assert_eq!(got.overlap, want.overlap, "dd {}", s.kind());
        }
        // Cancellation abandons the whole batch.
        let never = || false;
        let mut ws = sv.workspace(4);
        assert!(sv
            .probe_batch_while(&g, &buggy, &stimuli, &mut ws, &never)
            .unwrap()
            .is_none());
    }

    #[test]
    fn auto_backend_resolves_from_width_and_gate_mix() {
        let clifford = generators::clifford_adder(15); // 32 qubits, Clifford-only
        assert_eq!(auto_backend(&clifford, &clifford), BackendKind::Stab);
        let small = generators::qft(5, true);
        assert_eq!(auto_backend(&small, &small), BackendKind::Statevector);
        let mid = generators::qft(16, true);
        assert_eq!(auto_backend(&mid, &mid), BackendKind::DecisionDiagram);
        let mut wide = generators::ghz(30);
        wide.t(3); // non-Clifford and too wide for dense engines
        assert_eq!(auto_backend(&wide, &wide), BackendKind::Mps);
        // A Clifford G paired with a non-Clifford G' must not pick Stab.
        assert_eq!(auto_backend(&generators::ghz(30), &wide), BackendKind::Mps);
    }
}
