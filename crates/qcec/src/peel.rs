//! Clifford peeling: stripping the shared Clifford rim off a circuit pair
//! before any simulation or complete check.
//!
//! Compiled circuits usually differ from their sources only in a *middle*
//! region — the shared state-preparation prefix and measurement-basis
//! suffix pass through most flows untouched. This pass removes the longest
//! common prefix, then the longest common suffix, of gates that are both
//! **canonically identical** (byte equality of [`qcirc::canon`] encodings,
//! so `rz(θ)` matches `rz(θ + 4π)`) and **Clifford**
//! ([`qcirc::Gate::is_clifford`]), and hands the residual pair to the flow.
//!
//! # Soundness
//!
//! Writing the shared prefix and suffix as unitaries `P` and `S`, the full
//! pair satisfies `U₂·U₁† = S·(M₂·M₁†)·S†` for the residual middles `M₁`,
//! `M₂` — and conjugation by a fixed unitary preserves both "is the
//! identity" and "is `e^{iφ}·𝕀`" (with the same `φ`). Equivalence,
//! non-equivalence and the global phase therefore all carry over from the
//! residual pair to the original pair, under either
//! [`Criterion`](crate::Criterion). This holds for *any* shared gate; the
//! pass still restricts itself to Clifford gates, the regime the
//! stabilizer probe engine targets, where compiled flows concentrate their
//! shared structure and where a stripped rim provably never hid
//! non-Clifford magic the residual check might need cheap stimuli for.
//!
//! What peeling is **not**: verdict-*byte* preserving. The residual
//! circuits see the raw stimuli directly (the stripped prefix no longer
//! scrambles them), so counterexample stimuli and run indices differ from
//! the unpeeled flow even though the verdict class is identical. This is
//! why [`Config::peel`](crate::Config::peel) defaults to off.

use qcirc::{canon, Circuit, Gate};

/// The outcome of [`peel`]: how much rim was stripped and the residual
/// circuit pair, on the original register.
#[derive(Debug, Clone, PartialEq)]
pub struct Peeled {
    /// Gates stripped from the front (shared Clifford prefix length).
    pub prefix: usize,
    /// Gates stripped from the back (shared Clifford suffix length).
    pub suffix: usize,
    /// The residual left circuit.
    pub g: Circuit,
    /// The residual right circuit.
    pub g_prime: Circuit,
}

impl Peeled {
    /// Total number of gate *pairs* removed.
    #[must_use]
    pub fn stripped(&self) -> usize {
        self.prefix + self.suffix
    }
}

/// `true` when the two gates are the same canonical Clifford gate — the
/// peeling criterion.
fn peelable_pair(a: &Gate, b: &Gate, buf_a: &mut Vec<u8>, buf_b: &mut Vec<u8>) -> bool {
    if !a.is_clifford() {
        return false;
    }
    buf_a.clear();
    buf_b.clear();
    canon::encode_gate_into(a, buf_a);
    canon::encode_gate_into(b, buf_b);
    buf_a == buf_b
}

/// Strips the longest common Clifford prefix, then the longest common
/// Clifford suffix, from the pair (gate-by-gate canonical comparison) and
/// returns the residual circuits.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ.
///
/// # Examples
///
/// ```
/// let mut g = qcirc::generators::ghz(4);
/// let mut g_prime = g.clone();
/// g.t(2);
/// g_prime.t(2);
/// g_prime.z(0); // the fault
/// let peeled = qcec::peel::peel(&g, &g_prime);
/// assert_eq!(peeled.prefix, 4, "the GHZ ladder is shared Clifford");
/// assert_eq!(peeled.suffix, 0, "the trailing T is shared but not Clifford");
/// assert_eq!(peeled.g.len(), 1);
/// assert_eq!(peeled.g_prime.len(), 2);
/// ```
#[must_use]
pub fn peel(g: &Circuit, g_prime: &Circuit) -> Peeled {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let a = g.gates();
    let b = g_prime.gates();
    let limit = a.len().min(b.len());
    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
    let mut prefix = 0;
    while prefix < limit && peelable_pair(&a[prefix], &b[prefix], &mut buf_a, &mut buf_b) {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < limit - prefix
        && peelable_pair(
            &a[a.len() - 1 - suffix],
            &b[b.len() - 1 - suffix],
            &mut buf_a,
            &mut buf_b,
        )
    {
        suffix += 1;
    }
    let mut mid_g = Circuit::new(g.n_qubits());
    for gate in &a[prefix..a.len() - suffix] {
        mid_g.push(gate.clone());
    }
    let mut mid_g_prime = Circuit::new(g_prime.n_qubits());
    for gate in &b[prefix..b.len() - suffix] {
        mid_g_prime.push(gate.clone());
    }
    Peeled {
        prefix,
        suffix,
        g: mid_g,
        g_prime: mid_g_prime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::CircuitId;
    use crate::{check_equivalence, Config};
    use proptest::prelude::*;
    use qcirc::generators;

    #[test]
    fn identical_clifford_circuits_peel_to_nothing() {
        let g = generators::ghz(5);
        let peeled = peel(&g, &g);
        assert_eq!(peeled.prefix, g.len());
        assert_eq!(peeled.suffix, 0, "the prefix sweep consumed everything");
        assert_eq!(peeled.g.len(), 0);
        assert_eq!(peeled.g_prime.len(), 0);
    }

    #[test]
    fn divergence_point_bounds_the_prefix() {
        let mut g = Circuit::new(2);
        g.h(0).cx(0, 1).s(1).h(0);
        let mut g_prime = Circuit::new(2);
        g_prime.h(0).cx(0, 1).sdg(1).h(0);
        let peeled = peel(&g, &g_prime);
        assert_eq!((peeled.prefix, peeled.suffix), (2, 1));
        assert_eq!(peeled.g.gates()[0].kind().mnemonic(), "s");
        assert_eq!(peeled.g_prime.gates()[0].kind().mnemonic(), "sdg");
    }

    #[test]
    fn non_clifford_shared_gates_are_kept() {
        let mut g = Circuit::new(1);
        g.t(0).x(0);
        let mut g_prime = Circuit::new(1);
        g_prime.t(0).y(0);
        let peeled = peel(&g, &g_prime);
        assert_eq!(peeled.prefix, 0, "a shared T gate is not peelable");
        assert_eq!(peeled.g.len(), 2);
    }

    #[test]
    fn canonical_equality_sees_through_angle_wrapping() {
        use std::f64::consts::PI;
        let mut g = Circuit::new(1);
        g.rz(PI / 2.0, 0).x(0);
        let mut g_prime = Circuit::new(1);
        g_prime.rz(PI / 2.0 + 4.0 * PI, 0).y(0);
        let peeled = peel(&g, &g_prime);
        assert_eq!(peeled.prefix, 1, "rz(π/2) ≡ rz(π/2 + 4π) canonically");
    }

    #[test]
    #[should_panic(expected = "equal qubit counts")]
    fn qubit_mismatch_panics() {
        let _ = peel(&Circuit::new(2), &Circuit::new(3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Peeling preserves the verdict class on Clifford+T pairs with an
        /// injected fault (and on equivalent pairs), for both engines the
        /// flow routes Clifford-dominated work to.
        #[test]
        fn peeling_preserves_the_verdict(seed in 0u64..1000) {
            let g = generators::random_clifford_t(5, 40, seed);
            let mut buggy = g.clone();
            buggy.z((seed % 5) as usize);
            for backend in [crate::BackendKind::Statevector, crate::BackendKind::Stab] {
                let plain = Config::default().with_seed(seed).with_backend(backend);
                let peeled = plain.clone().with_peel(true);
                for pair in [(&g, &g), (&g, &buggy)] {
                    let a = check_equivalence(pair.0, pair.1, &plain).unwrap();
                    let b = check_equivalence(pair.0, pair.1, &peeled).unwrap();
                    prop_assert_eq!(
                        std::mem::discriminant(&a.outcome),
                        std::mem::discriminant(&b.outcome),
                        "backend {}: {} vs {}", backend, a.outcome, b.outcome
                    );
                }
            }
        }

        /// The residual pair is a pure function of the input pair: its
        /// `CircuitId`s never depend on run order or repetition.
        #[test]
        fn residual_circuit_ids_are_stable(seed in 0u64..1000) {
            let g = generators::random_clifford_t(4, 30, seed);
            let mut other = g.clone();
            other.x((seed % 4) as usize);
            let first = peel(&g, &other);
            let again = peel(&g, &other);
            prop_assert_eq!(CircuitId::of(&first.g), CircuitId::of(&again.g));
            prop_assert_eq!(
                CircuitId::of(&first.g_prime),
                CircuitId::of(&again.g_prime)
            );
            prop_assert_eq!(&first, &again);
        }
    }
}
