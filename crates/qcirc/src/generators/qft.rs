//! The Quantum Fourier Transform.

use std::f64::consts::PI;

use crate::circuit::Circuit;

/// Builds the `n`-qubit Quantum Fourier Transform.
///
/// Uses the textbook cascade of Hadamards and controlled phases; when
/// `with_swaps` is set, the final qubit-reversal SWAP network is appended
/// (making the unitary the "true" QFT rather than the bit-reversed one).
/// `|G| = n(n+1)/2 (+ ⌊n/2⌋ swaps)` — `qft(64, true)` has 2 080 + 32 gates,
/// matching the paper's "QFT 64" row up to the swap convention.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let c = qcirc::generators::qft(4, false);
/// assert_eq!(c.len(), 4 * 5 / 2);
/// ```
#[must_use]
pub fn qft(n: usize, with_swaps: bool) -> Circuit {
    let mut c = Circuit::with_name(n, format!("qft_{n}"));
    for target in (0..n).rev() {
        c.h(target);
        for ctrl in (0..target).rev() {
            let k = target - ctrl;
            c.cp(PI / f64::powi(2.0, k as i32), ctrl, target);
        }
    }
    if with_swaps {
        for q in 0..n / 2 {
            c.swap(q, n - 1 - q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_count_is_triangular() {
        for n in 1..10 {
            let c = qft(n, false);
            assert_eq!(c.len(), n * (n + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn paper_row_gate_counts() {
        // Paper Table I: |G| = 1 176 for QFT 48 and 2 080 for QFT 64
        // (triangular numbers, i.e. the swap-free convention).
        assert_eq!(qft(48, false).len(), 1176);
        assert_eq!(qft(64, false).len(), 2080);
    }

    #[test]
    fn swaps_append_floor_n_half() {
        assert_eq!(qft(5, true).len(), 15 + 2);
        assert_eq!(qft(6, true).len(), 21 + 3);
    }

    #[test]
    fn smallest_qft_is_a_hadamard() {
        let c = qft(1, false);
        assert_eq!(c.len(), 1);
        assert_eq!(c.gates()[0].to_string(), "h q[0]");
    }
}
