//! Regenerates Table Ia: non-equivalent benchmarks.
//!
//! For every benchmark pair, a design-flow error is injected into the
//! alternative realization with the `qfault` mutators — cycling through
//! the error classes row by row, and re-drawing until the guard confirms
//! the mutation is a real fault (a benign mutation would make the row
//! meaningless). The table reports, per row:
//!
//! * `t_ec` — runtime of the *sole* state-of-the-art DD equivalence check
//!   (`> D` when the deadline/node budget is exhausted, like the paper's
//!   `> 3600` entries),
//! * `#sims` — simulations until the proposed flow finds a counterexample,
//! * `t_sim` — runtime of the simulation stage.
//!
//! Environment: `QCEC_BENCH_SCALE` (0 smoke / 1 full, default 1),
//! `QCEC_BENCH_DEADLINE` (seconds for `t_ec`, default 30),
//! `QCEC_BENCH_JSON` (`1` → emit the rows as a JSON report on stdout
//! instead of the text table).

use std::time::Instant;

use bench::{deadline_from_env, fmt_secs, scale_from_env, suite};
use qcec::report::Report;
use qcec::{BackendKind, Config, Fallback, FlowResult, Outcome};
use qcirc::Circuit;
use qfault::{mutator_for, GuardOptions, Mutation, MutationKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Injects a guard-confirmed fault, cycling through the error classes
/// starting at `row`'s class and re-drawing on benign/inapplicable
/// mutations.
fn inject_fault(circuit: &Circuit, row: usize, rng: &mut StdRng) -> Option<(Circuit, Mutation)> {
    let guard = GuardOptions::default();
    let kinds = MutationKind::ALL;
    for attempt in 0..4 * kinds.len() {
        let kind = kinds[(row + attempt) % kinds.len()];
        let mutator = mutator_for(kind, 0.1);
        let Ok((mutated, record)) = mutator.apply(circuit, rng) else {
            continue;
        };
        if qfault::guard::classify(circuit, &mutated, &guard).is_benign() {
            continue;
        }
        return Some((mutated, record));
    }
    None
}

fn main() {
    let deadline = deadline_from_env(30);
    let scale = scale_from_env();
    let json_mode = std::env::var("QCEC_BENCH_JSON").is_ok_and(|v| v == "1");
    let dd_limit = 2_000_000;
    let mut report = Report::new();

    if !json_mode {
        println!("Table Ia — non-equivalent benchmarks (deadline {deadline:?})");
        println!(
            "{:<18} {:>3} {:>8} {:>8} {:>12} {:>6} {:>10}  injected error",
            "Benchmark", "n", "|G|", "|G'|", "t_ec [s]", "#sims", "t_sim [s]"
        );
    }

    for (row, pair) in suite(scale).into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xDAC2020 + 31 * row as u64);
        let Some((buggy, record)) = inject_fault(&pair.alternative, row, &mut rng) else {
            eprintln!("{}: skipped (no applicable fault)", pair.name);
            continue;
        };

        // Sole state-of-the-art EC routine (t_ec).
        let ec_start = Instant::now();
        let mut package = qdd::Package::with_node_limit(pair.n_qubits(), dd_limit);
        let ec = qdd::check_equivalence_alternating(
            &mut package,
            &pair.original,
            &buggy,
            Some(deadline),
        );
        let ec_elapsed = ec_start.elapsed();
        let t_ec = match ec {
            Ok(verdict) => {
                debug_assert!(!verdict.is_equivalent());
                fmt_secs(ec_elapsed)
            }
            Err(_) => format!("> {}", deadline.as_secs()),
        };

        // Proposed flow, simulation stage only.
        let backend = if pair.statevector_ok {
            BackendKind::Statevector
        } else {
            BackendKind::DecisionDiagram
        };
        let config = Config::new()
            .with_fallback(Fallback::None)
            .with_backend(backend)
            .with_dd_node_limit(dd_limit)
            .with_simulations(10)
            .with_seed(7);
        let result = match qcec::check_equivalence(&pair.original, &buggy, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: simulation failed ({e})", pair.name);
                continue;
            }
        };
        let (sims, t_sim) = match &result.outcome {
            Outcome::NotEquivalent {
                counterexample: Some(ce),
            } => (ce.run.to_string(), fmt_secs(result.stats.simulation_time)),
            _ => (
                "-".to_string(),
                format!("{} (undetected!)", fmt_secs(result.stats.simulation_time)),
            ),
        };

        if json_mode {
            // One report row per benchmark: the flow verdict plus the sole
            // EC routine's runtime in the functional-time column.
            let mut stats = result.stats;
            stats.functional_time = ec_elapsed;
            report.push_with_backend(
                format!("{} [{}]", pair.name, record.kind.slug()),
                pair.n_qubits(),
                pair.original.len(),
                buggy.len(),
                backend,
                FlowResult {
                    outcome: result.outcome.clone(),
                    stats,
                },
            );
        } else {
            println!(
                "{:<18} {:>3} {:>8} {:>8} {:>12} {:>6} {:>10}  {}",
                pair.name,
                pair.n_qubits(),
                pair.original.len(),
                buggy.len(),
                t_ec,
                sims,
                t_sim,
                record
            );
        }
    }

    if json_mode {
        println!("{}", report.to_json(true));
    }
}
