//! Regenerates Table Ib: equivalent benchmarks.
//!
//! For every pair `(G, G')` produced by a verified design-flow step, the
//! table compares the runtime of the complete DD equivalence check
//! (`t_ec`, `> D` on deadline/node exhaustion) with the cost of the
//! proposed flow's `r = 10` random simulations (`t_sim`) — showing that the
//! simulations are a negligible overhead while providing a strong
//! indication of equivalence even when the complete check fails.
//!
//! Environment: `QCEC_BENCH_SCALE` (0 smoke / 1 full, default 1),
//! `QCEC_BENCH_DEADLINE` (seconds, default 30), `QCEC_BENCH_JSON` (`1` →
//! emit the rows as a JSON report on stdout instead of the text table).

use std::time::Instant;

use bench::{deadline_from_env, fmt_secs, scale_from_env, suite};
use qcec::report::Report;
use qcec::{run_simulations, AbortReason, FlowResult, FlowStats, Outcome, SimVerdict};
use qcec::{BackendKind, Config};

fn main() {
    let deadline = deadline_from_env(30);
    let scale = scale_from_env();
    let json_mode = std::env::var("QCEC_BENCH_JSON").is_ok_and(|v| v == "1");
    let dd_limit = 2_000_000;
    let mut report = Report::new();

    if !json_mode {
        println!("Table Ib — equivalent benchmarks (deadline {deadline:?}, r = 10)");
        println!(
            "{:<18} {:>3} {:>8} {:>8} {:>12} {:>10}  derivation",
            "Benchmark", "n", "|G|", "|G'|", "t_ec [s]", "t_sim [s]"
        );
    }

    for pair in suite(scale) {
        // Complete EC routine alone.
        let ec_start = Instant::now();
        let mut package = qdd::Package::with_node_limit(pair.n_qubits(), dd_limit);
        let ec = qdd::check_equivalence_alternating(
            &mut package,
            &pair.original,
            &pair.alternative,
            Some(deadline),
        );
        let ec_elapsed = ec_start.elapsed();
        let ec_finished = ec.is_ok();
        let t_ec = match ec {
            Ok(verdict) => {
                assert!(
                    verdict.is_equivalent(),
                    "{}: suite pair not equivalent!",
                    pair.name
                );
                fmt_secs(ec_elapsed)
            }
            Err(_) => format!("> {}", deadline.as_secs()),
        };

        // The proposed flow's simulation stage (r = 10).
        let backend = if pair.statevector_ok {
            BackendKind::Statevector
        } else {
            BackendKind::DecisionDiagram
        };
        let config = Config::new()
            .with_backend(backend)
            .with_dd_node_limit(dd_limit)
            .with_simulations(10)
            .with_seed(7);
        let sim_start = Instant::now();
        let verdict = run_simulations(&pair.original, &pair.alternative, &config);
        let sim_elapsed = sim_start.elapsed();
        let t_sim = match &verdict {
            Ok(SimVerdict::AllAgreed { .. }) => fmt_secs(sim_elapsed),
            Ok(SimVerdict::CounterexampleFound(ce)) => {
                format!("FALSE NEGATIVE ({ce})")
            }
            Err(e) => format!("dd overflow ({e})"),
        };

        if json_mode {
            // Synthesize the flow result the two measured stages imply:
            // proven equivalence when the complete check finished, the
            // paper's "probably equivalent" outcome when it timed out.
            let outcome = if ec_finished {
                Outcome::Equivalent
            } else {
                Outcome::ProbablyEquivalent {
                    passed_simulations: config.simulations,
                    abort: AbortReason::Timeout,
                }
            };
            report.push_with_backend(
                pair.name.clone(),
                pair.n_qubits(),
                pair.original.len(),
                pair.alternative.len(),
                backend,
                FlowResult {
                    outcome,
                    stats: FlowStats {
                        simulations_run: config.simulations,
                        simulation_time: sim_elapsed,
                        functional_time: ec_elapsed,
                    },
                },
            );
        } else {
            println!(
                "{:<18} {:>3} {:>8} {:>8} {:>12} {:>10}  {:?}",
                pair.name,
                pair.n_qubits(),
                pair.original.len(),
                pair.alternative.len(),
                t_ec,
                t_sim,
                pair.derivation
            );
        }
    }

    if json_mode {
        println!("{}", report.to_json(true));
    }
}
