//! A matrix-product-state / matrix-product-operator tensor-network engine.
//!
//! The paper's simulation-first flow dies with its engines: dense
//! statevectors stop near `n = 24` (2ⁿ amplitudes) and decision diagrams
//! blow up on unstructured circuits. Following "Equivalence checking of
//! quantum circuits via intermediary matrix product operator"
//! (Sander, Burgholzer & Wille), this crate trades *exactness* for
//! *bounded memory*: states and operators are factorized into chains of
//! site tensors whose bond dimension is capped at `χ_max`, and every
//! two-site gate application is re-split by an SVD that discards the
//! smallest singular values, accumulating the discarded weight as a
//! reported **truncation error**.
//!
//! Two consumers map onto the paper's two stages:
//!
//! * **Stimulus probes** ([`Mps`]): simulate a stimulus through both
//!   circuits as `χ`-bounded MPS evolutions and compare the outputs with
//!   an [`Mps::inner_product`]. With a sufficient `χ_max` the run is
//!   *exact* (`truncation_error == 0`) and bitwise deterministic; when
//!   truncation fires, the error is surfaced so callers can widen their
//!   acceptance window and demote "no counterexample" verdicts to the
//!   paper's *probably equivalent*.
//! * **The complete check** ([`check_equivalence_alternating`]): keep an
//!   intermediary MPO `E` that converges to `U′† · U` by consuming `G`
//!   from the right and `G′†` from the left — the same alternation, and
//!   the same pluggable [`qdd::ApplicationScheme`] interleaving policies,
//!   as the decision-diagram check — then test closeness to the identity
//!   via the normalized trace `t = Tr(E) / (√2ⁿ · ‖E‖_F)`, which equals a
//!   phase of magnitude 1 exactly when `U′ = e^{iφ} U` (Cauchy–Schwarz in
//!   the Hilbert–Schmidt inner product).
//!
//! Everything is plain `qnum` complex arithmetic: the SVD is a one-sided
//! complex Jacobi orthogonalization ([`svd`]), dependency-free and fully
//! deterministic, so probe overlaps remain pure functions of their inputs
//! — the property the deterministic scheduler upstream relies on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mpo;
mod mps;
mod svd;

pub use mpo::{
    check_equivalence_alternating, check_equivalence_alternating_cancellable,
    check_equivalence_construct, check_equivalence_construct_cancellable, MpoCheckAbort,
    MpoEquivalence, MpoVerdict,
};
pub use mps::{Mps, OperatorSide};
pub use svd::svd;

/// The default bond-dimension cap. Chosen so a 64-qubit probe stays in the
/// tens of megabytes (`n · χ² · d` complex values) while keeping every
/// circuit whose Schmidt rank fits — in particular, all the paper's
/// benchmark families at small `n` — numerically exact.
pub const DEFAULT_CHI_MAX: usize = 64;
