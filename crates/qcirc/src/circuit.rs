//! The circuit IR: an ordered list of gates on a fixed register of qubits.

use std::fmt;

use crate::gate::{Gate, GateKind};

/// A quantum circuit `G = g₀ g₁ … g_{m−1}` on `n` qubits.
///
/// Gates are applied in list order: the system matrix is
/// `U = U_{m−1} ⋯ U₀` (paper Section II). The struct offers a fluent builder
/// API for every supported gate, structural queries (depth, counts), and
/// whole-circuit transformations (inverse, composition, remapping).
///
/// # Examples
///
/// ```
/// use qcirc::Circuit;
///
/// // The Bell-pair preparation circuit.
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
    name: String,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    #[must_use]
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "a circuit needs at least one qubit");
        Circuit {
            n_qubits,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty named circuit (the name is carried through
    /// transformations and printed by benchmark harnesses).
    #[must_use]
    pub fn with_name(n_qubits: usize, name: impl Into<String>) -> Self {
        let mut c = Circuit::new(n_qubits);
        c.name = name.into();
        c
    }

    /// The number of qubits.
    #[inline]
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The circuit name (may be empty).
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The number of gates `|G|`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in application order.
    #[inline]
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate, validating that it fits the register.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit `≥ n_qubits`.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        assert!(
            gate.max_qubit() < self.n_qubits,
            "gate {gate} exceeds register of {} qubits",
            self.n_qubits
        );
        self.gates.push(gate);
        self
    }

    /// Fallible variant of [`Circuit::push`].
    ///
    /// # Errors
    ///
    /// Returns [`GateFitError`] if the gate touches a qubit outside the
    /// register; the gate is handed back inside the error.
    pub fn try_push(&mut self, gate: Gate) -> Result<(), GateFitError> {
        if gate.max_qubit() >= self.n_qubits {
            return Err(GateFitError {
                gate,
                n_qubits: self.n_qubits,
            });
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Removes and returns the gate at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove(&mut self, index: usize) -> Gate {
        self.gates.remove(index)
    }

    /// Replaces the gate at `index`, returning the old gate.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or the new gate does not fit.
    pub fn replace(&mut self, index: usize, gate: Gate) -> Gate {
        assert!(
            gate.max_qubit() < self.n_qubits,
            "gate {gate} exceeds register of {} qubits",
            self.n_qubits
        );
        std::mem::replace(&mut self.gates[index], gate)
    }

    /// Inserts a gate at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > len` or the gate does not fit.
    pub fn insert(&mut self, index: usize, gate: Gate) {
        assert!(
            gate.max_qubit() < self.n_qubits,
            "gate {gate} exceeds register of {} qubits",
            self.n_qubits
        );
        self.gates.insert(index, gate);
    }

    // ---- fluent single-qubit builders -------------------------------------

    /// Appends an identity gate (explicit no-op).
    pub fn id(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::I, q))
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::X, q))
    }

    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Y, q))
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Z, q))
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::H, q))
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::S, q))
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Sdg, q))
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::T, q))
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Tdg, q))
    }

    /// Appends a √X gate.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Sx, q))
    }

    /// Appends a √Y gate.
    pub fn sy(&mut self, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Sy, q))
    }

    /// Appends an `Rx(θ)` rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Rx(theta), q))
    }

    /// Appends an `Ry(θ)` rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Ry(theta), q))
    }

    /// Appends an `Rz(θ)` rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Rz(theta), q))
    }

    /// Appends a phase gate `P(λ)`.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::Phase(lambda), q))
    }

    /// Appends a generic `U3(θ, φ, λ)` gate.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.push(Gate::single(GateKind::U3(theta, phi, lambda), q))
    }

    // ---- fluent multi-qubit builders --------------------------------------

    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::X, vec![c], t))
    }

    /// Appends a controlled-Z.
    pub fn cz(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::Z, vec![c], t))
    }

    /// Appends a controlled-phase `CP(λ)`.
    pub fn cp(&mut self, lambda: f64, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::Phase(lambda), vec![c], t))
    }

    /// Appends a controlled `Rz(θ)`.
    pub fn crz(&mut self, theta: f64, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::Rz(theta), vec![c], t))
    }

    /// Appends a controlled-H.
    pub fn ch(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::H, vec![c], t))
    }

    /// Appends a Toffoli (CCX).
    pub fn ccx(&mut self, c0: usize, c1: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::X, vec![c0, c1], t))
    }

    /// Appends a multi-controlled X with arbitrary controls.
    pub fn mcx(&mut self, controls: Vec<usize>, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::X, controls, t))
    }

    /// Appends a multi-controlled Z.
    pub fn mcz(&mut self, controls: Vec<usize>, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::Z, controls, t))
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::swap(a, b))
    }

    /// Appends a Fredkin (controlled SWAP).
    pub fn cswap(&mut self, c: usize, a: usize, b: usize) -> &mut Self {
        self.push(Gate::controlled_swap(vec![c], a, b))
    }

    // ---- whole-circuit transformations ------------------------------------

    /// Returns the inverse circuit `G⁻¹` (gates reversed and inverted), so
    /// that `G · G⁻¹` is the identity.
    #[must_use]
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::with_name(self.n_qubits, format!("{}_inv", self.name));
        for g in self.gates.iter().rev() {
            inv.push(g.inverse());
        }
        inv
    }

    /// Appends all gates of `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self` has.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit one",
            other.n_qubits,
            self.n_qubits
        );
        for g in &other.gates {
            self.push(g.clone());
        }
        self
    }

    /// Returns `self` followed by `other` as a new circuit on
    /// `max(n, n')` qubits.
    #[must_use]
    pub fn compose(&self, other: &Circuit) -> Circuit {
        let mut out = Circuit::with_name(self.n_qubits.max(other.n_qubits), self.name.clone());
        out.append(self);
        out.append(other);
        out
    }

    /// Remaps every qubit index through `map` (used for layout placement).
    ///
    /// # Panics
    ///
    /// Panics if a remapped gate no longer fits the register or its qubits
    /// collide.
    #[must_use]
    pub fn remap(&self, map: impl Fn(usize) -> usize) -> Circuit {
        let mut out = Circuit::with_name(self.n_qubits, self.name.clone());
        for g in &self.gates {
            out.push(g.remap(&map));
        }
        out
    }

    /// Returns the circuit with `control` added as an extra control qubit
    /// on *every* gate, so the result applies `self` iff `control` is `|1⟩`
    /// and the identity otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `control` is outside the register or any gate already
    /// touches `control`.
    #[must_use]
    pub fn controlled_by(&self, control: usize) -> Circuit {
        assert!(
            control < self.n_qubits,
            "control qubit {control} outside the {}-qubit register",
            self.n_qubits
        );
        let mut out = Circuit::with_name(self.n_qubits, format!("c-{}", self.name));
        for g in &self.gates {
            assert!(
                g.qubits().all(|q| q != control),
                "gate {g} already touches the control qubit {control}"
            );
            let mut controls = vec![control];
            controls.extend_from_slice(g.controls());
            let gate = if *g.kind() == crate::gate::GateKind::Swap {
                Gate::controlled_swap(controls, g.targets()[0], g.targets()[1])
            } else {
                Gate::controlled(*g.kind(), controls, g.target())
            };
            out.push(gate);
        }
        out
    }

    /// Returns the same gates on a register widened to `n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is smaller than the current register.
    #[must_use]
    pub fn widened(&self, n_qubits: usize) -> Circuit {
        assert!(
            n_qubits >= self.n_qubits,
            "cannot shrink a circuit from {} to {n_qubits} qubits",
            self.n_qubits
        );
        let mut out = Circuit::with_name(n_qubits, self.name.clone());
        for g in &self.gates {
            out.push(g.clone());
        }
        out
    }

    // ---- structural queries -------------------------------------------------

    /// The circuit depth: length of the longest chain of gates that share
    /// qubits (the number of parallel layers).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let layer = g.qubits().map(|q| frontier[q]).max().unwrap_or(0) + 1;
            for q in g.qubits() {
                frontier[q] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Counts gates with at least one control or more than one target
    /// (i.e. gates that entangle).
    #[must_use]
    pub fn multi_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.width() > 1).count()
    }

    /// Counts the gates for which `pred` holds.
    #[must_use]
    pub fn count_where(&self, pred: impl Fn(&Gate) -> bool) -> usize {
        self.gates.iter().filter(|g| pred(g)).count()
    }

    /// The largest number of controls on any gate (0 for an empty circuit).
    #[must_use]
    pub fn max_controls(&self) -> usize {
        self.gates
            .iter()
            .map(|g| g.controls().len())
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if every gate is in the device basis
    /// `{any single-qubit gate, CX}` — the form circuits take after
    /// decomposition (paper Section IV-A).
    #[must_use]
    pub fn is_elementary(&self) -> bool {
        self.gates.iter().all(|g| {
            g.width() == 1
                || (g.width() == 2 && g.controls().len() == 1 && *g.kind() == GateKind::X)
        })
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit \"{}\" ({} qubits, {} gates):",
            self.name,
            self.n_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

/// Error returned by [`Circuit::try_push`] when a gate does not fit the
/// register.
#[derive(Debug, Clone, PartialEq)]
pub struct GateFitError {
    /// The rejected gate (returned to the caller).
    pub gate: Gate,
    /// The register size it did not fit.
    pub n_qubits: usize,
}

impl fmt::Display for GateFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate {} does not fit a register of {} qubits",
            self.gate, self.n_qubits
        )
    }
}

impl std::error::Error for GateFitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).swap(1, 2).rz(0.5, 0);
        assert_eq!(c.len(), 5);
        assert_eq!(c.n_qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_rejected() {
        let _ = Circuit::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds register")]
    fn out_of_range_gate_rejected() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    fn try_push_returns_gate_in_error() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::single(GateKind::H, 5)).unwrap_err();
        assert_eq!(err.n_qubits, 2);
        assert_eq!(err.gate.target(), 5);
        assert!(err.to_string().contains("does not fit"));
        assert!(c.is_empty());
    }

    #[test]
    fn depth_counts_parallel_layers() {
        let mut c = Circuit::new(3);
        // h(0) and h(1) are parallel; cx(0,1) follows both; h(2) is parallel
        // with everything until the ccx.
        c.h(0).h(1).cx(0, 1).h(2).ccx(0, 1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn depth_of_empty_circuit_is_zero() {
        assert_eq!(Circuit::new(2).depth(), 0);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.len(), 3);
        assert_eq!(inv.gates()[0].to_string(), "cx q[0], q[1]");
        assert_eq!(inv.gates()[1].to_string(), "sdg q[1]");
        assert_eq!(inv.gates()[2].to_string(), "h q[0]");
    }

    #[test]
    fn compose_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(3);
        b.cx(1, 2);
        let c = a.compose(&b);
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remap_relabels_all_gates() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1);
        let r = c.remap(|q| 3 - q);
        assert_eq!(r.gates()[0].target(), 3);
        assert_eq!(r.gates()[1].controls(), &[3]);
        assert_eq!(r.gates()[1].target(), 2);
    }

    #[test]
    fn widened_keeps_gates() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let w = c.widened(5);
        assert_eq!(w.n_qubits(), 5);
        assert_eq!(w.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn widened_rejects_shrinking() {
        let _ = Circuit::new(3).widened(2);
    }

    #[test]
    fn structural_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).t(2);
        assert_eq!(c.multi_qubit_count(), 2);
        assert_eq!(c.max_controls(), 2);
        assert_eq!(c.count_where(|g| g.kind().is_diagonal()), 1);
        assert!(!c.is_elementary());
        let mut e = Circuit::new(2);
        e.h(0).cx(0, 1).rz(0.1, 1);
        assert!(e.is_elementary());
    }

    #[test]
    fn edit_operations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).x(1);
        let removed = c.remove(1);
        assert_eq!(removed.to_string(), "cx q[0], q[1]");
        assert_eq!(c.len(), 2);
        let old = c.replace(0, Gate::single(GateKind::Z, 0));
        assert_eq!(old.to_string(), "h q[0]");
        c.insert(1, Gate::single(GateKind::H, 1));
        assert_eq!(c.len(), 3);
        assert_eq!(c.gates()[1].to_string(), "h q[1]");
    }

    #[test]
    fn controlled_by_adds_a_control_everywhere() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).swap(0, 1);
        let cc = c.controlled_by(2);
        assert_eq!(cc.gates()[0].to_string(), "ch q[2], q[0]");
        assert_eq!(cc.gates()[1].to_string(), "ccx q[2], q[0], q[1]");
        assert_eq!(cc.gates()[2].to_string(), "cswap q[2], q[0], q[1]");
    }

    #[test]
    #[should_panic(expected = "already touches")]
    fn controlled_by_rejects_overlap() {
        let mut c = Circuit::new(2);
        c.h(0);
        let _ = c.controlled_by(0);
    }

    #[test]
    fn extend_and_iterate() {
        let mut c = Circuit::new(2);
        c.extend([Gate::single(GateKind::H, 0), Gate::swap(0, 1)]);
        let rendered: Vec<String> = (&c).into_iter().map(|g| g.to_string()).collect();
        assert_eq!(rendered, vec!["h q[0]", "swap q[0], q[1]"]);
    }

    #[test]
    fn display_contains_header_and_gates() {
        let mut c = Circuit::with_name(2, "bell");
        c.h(0).cx(0, 1);
        let s = c.to_string();
        assert!(s.contains("bell"));
        assert!(s.contains("h q[0]"));
        assert!(s.contains("cx q[0], q[1]"));
    }
}
