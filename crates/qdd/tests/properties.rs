//! Property-based tests of the decision-diagram algebra.

use proptest::prelude::*;
use qcirc::generators;
use qdd::Package;

/// A seeded random circuit: proptest shrinks over (qubits, gates, seed).
fn circuit_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..5, 5usize..60, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DD circuit matrices agree with the dense reference.
    #[test]
    fn circuit_dd_matches_dense((n, m, seed) in circuit_params()) {
        let c = generators::random_clifford_t(n, m, seed);
        let mut p = Package::new(n);
        let u = p.circuit_medge(&c).unwrap();
        prop_assert!(p.to_matrix(u).approx_eq(&qcirc::dense::unitary(&c)));
    }

    /// Canonicity: the same circuit built twice gives the identical edge.
    #[test]
    fn construction_is_canonical((n, m, seed) in circuit_params()) {
        let c = generators::random_clifford_t(n, m, seed);
        let mut p = Package::new(n);
        let u1 = p.circuit_medge(&c).unwrap();
        let u2 = p.circuit_medge(&c).unwrap();
        prop_assert_eq!(u1, u2);
    }

    /// U† · U = 𝕀 in DD form.
    #[test]
    fn adjoint_is_inverse((n, m, seed) in circuit_params()) {
        let c = generators::random_clifford_t(n, m, seed);
        let mut p = Package::new(n);
        let u = p.circuit_medge(&c).unwrap();
        let udag = p.adjoint(u).unwrap();
        let prod = p.mul_mm(udag, u).unwrap();
        prop_assert!(p.is_identity(prod));
    }

    /// Adjoint is an involution.
    #[test]
    fn adjoint_involution((n, m, seed) in circuit_params()) {
        let c = generators::random_clifford_t(n, m, seed);
        let mut p = Package::new(n);
        let u = p.circuit_medge(&c).unwrap();
        let back = {
            let ud = p.adjoint(u).unwrap();
            p.adjoint(ud).unwrap()
        };
        prop_assert_eq!(back, u);
    }

    /// Matrix addition commutes and multiplication distributes over it
    /// (up to interning tolerance, checked densely).
    #[test]
    fn algebra_laws((n, m, seed) in (2usize..4, 5usize..25, any::<u64>())) {
        let a_circ = generators::random_clifford_t(n, m, seed);
        let b_circ = generators::random_clifford_t(n, m, seed.wrapping_add(1));
        let c_circ = generators::random_clifford_t(n, m, seed.wrapping_add(2));
        let mut p = Package::new(n);
        let a = p.circuit_medge(&a_circ).unwrap();
        let b = p.circuit_medge(&b_circ).unwrap();
        let c = p.circuit_medge(&c_circ).unwrap();
        // a + b = b + a (canonical edges must be equal).
        let ab = p.add_mm(a, b).unwrap();
        let ba = p.add_mm(b, a).unwrap();
        prop_assert_eq!(ab, ba);
        // a·(b + c) ≈ a·b + a·c (densely, within tolerance).
        let bc = p.add_mm(b, c).unwrap();
        let lhs = p.mul_mm(a, bc).unwrap();
        let rhs = {
            let ab2 = p.mul_mm(a, b).unwrap();
            let ac = p.mul_mm(a, c).unwrap();
            p.add_mm(ab2, ac).unwrap()
        };
        prop_assert!(p.to_matrix(lhs).approx_eq(&p.to_matrix(rhs)));
    }

    /// Simulation in DD form preserves normalization.
    #[test]
    fn dd_states_stay_normalized((n, m, seed) in circuit_params(), basis_sel in any::<u64>()) {
        let c = generators::random_clifford_t(n, m, seed);
        let mut p = Package::new(n);
        let basis = basis_sel % (1 << n);
        let v = p.apply_to_basis(&c, basis).unwrap();
        let norm = p.inner_product(v, v);
        prop_assert!((norm.re - 1.0).abs() < 1e-9 && norm.im.abs() < 1e-12);
    }

    /// GC compaction preserves matrix semantics and canonicity.
    #[test]
    fn compaction_is_transparent((n, m, seed) in circuit_params()) {
        let c = generators::random_clifford_t(n, m, seed);
        let mut p = Package::new(n);
        let u = p.circuit_medge(&c).unwrap();
        let dense = p.to_matrix(u);
        let (roots, _) = p.compact(&[u], &[]);
        prop_assert!(p.to_matrix(roots[0]).approx_eq(&dense));
        let rebuilt = p.circuit_medge(&c).unwrap();
        prop_assert_eq!(rebuilt, roots[0]);
    }

    /// Matrix-vector product agrees with matrix application column-wise.
    #[test]
    fn mv_matches_matrix_column((n, m, seed) in circuit_params(), basis_sel in any::<u64>()) {
        let c = generators::random_clifford_t(n, m, seed);
        let basis = basis_sel % (1 << n);
        let mut p = Package::new(n);
        let u = p.circuit_medge(&c).unwrap();
        let b = p.basis_vedge(basis).unwrap();
        let v = p.mul_mv(u, b).unwrap();
        let direct = p.apply_to_basis(&c, basis).unwrap();
        // Gate-by-gate simulation and one-shot M·v agree (same canonical edge).
        prop_assert_eq!(v, direct);
    }
}
