//! The memoized guard must be *label-identical* to the stateless per-call
//! guard (both reduce to the same canonical root comparison), and composed
//! mutations that cancel each other must be labelled benign — the campaign
//! may swap one for the other freely without changing a single verdict.

use proptest::prelude::*;
use qcirc::generators;
use qfault::{mutator_for, registry, GuardCache, GuardOptions, MutationKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every cached-guard label on 50 seeded mutants exactly matches the
/// uncached per-trial guard label — including the benign phase payload.
#[test]
fn cached_guard_labels_match_uncached_on_50_seeded_mutants() {
    let goldens = [
        generators::qft(5, true),
        generators::grover(3, 5, generators::optimal_grover_iterations(3)),
    ];
    let opts = GuardOptions::default();
    let mut checked = 0usize;
    'outer: for golden in &goldens {
        let cache = GuardCache::new(golden, &opts);
        for (m_idx, mutator) in registry(0.2).iter().enumerate() {
            for seed in 0..4u64 {
                let mut rng = StdRng::seed_from_u64(1000 * m_idx as u64 + seed);
                let Ok((mutated, record)) = mutator.apply(golden, &mut rng) else {
                    continue;
                };
                let cached = cache.classify(&mutated);
                let uncached = qfault::guard::classify(golden, &mutated, &opts);
                assert_eq!(
                    cached, uncached,
                    "{record}: cached guard labelled {cached}, uncached {uncached}"
                );
                checked += 1;
                if checked >= 50 {
                    break 'outer;
                }
            }
        }
    }
    assert!(checked >= 50, "only {checked} mutants labelled");
}

/// A sequential cache builds its golden DD exactly once, however many
/// mutants it labels.
#[test]
fn sequential_cache_builds_the_golden_dd_once() {
    let golden = generators::qft(5, true);
    let cache = GuardCache::new(&golden, &GuardOptions::default());
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        for mutator in registry(0.2) {
            if let Ok((mutated, _)) = mutator.apply(&golden, &mut rng) {
                let _ = cache.classify(&mutated);
            }
        }
    }
    assert_eq!(cache.golden_builds(), 1);
    assert!(cache.mutants_checked() >= 50);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Mixed-class double faults that cancel — a spurious insertion undone
    /// by a removal drawn from a *different* mutator class — compose to the
    /// identity and must be guard-labelled benign, never fault.
    #[test]
    fn mixed_class_double_faults_cancelling_are_benign(seed in 0u64..10_000) {
        let golden = match seed % 3 {
            0 => generators::qft(4, true),
            1 => generators::ghz(5),
            _ => generators::grover(3, 5, 1),
        };
        let pairs = [
            (MutationKind::AddGate, MutationKind::RemoveGate),
            (MutationKind::AddControl, MutationKind::RemoveControl),
        ];
        let mut composed = 0usize;
        for (add_kind, remove_kind) in pairs {
            let add = mutator_for(add_kind, 0.1);
            let remove = mutator_for(remove_kind, 0.1);
            let mut rng = StdRng::seed_from_u64(seed);
            let Ok((broken, _)) = add.apply(&golden, &mut rng) else {
                continue;
            };
            // Hunt the removal draw that undoes exactly this insertion
            // (mutators rename their output, so compare the gate lists);
            // uniform site choice makes one appear within a few hundred
            // seeds for these circuit sizes.
            let restored = (0..400u64).find_map(|rs| {
                let mut rrng = StdRng::seed_from_u64(rs);
                match remove.apply(&broken, &mut rrng) {
                    Ok((candidate, _)) if candidate.gates() == golden.gates() => Some(candidate),
                    _ => None,
                }
            });
            let Some(restored) = restored else { continue };
            composed += 1;
            let verdict =
                qfault::guard::classify(&golden, &restored, &GuardOptions::default());
            prop_assert!(
                verdict.is_benign(),
                "{add_kind}+{remove_kind} cancel to identity yet labelled {verdict}"
            );
        }
        prop_assert!(composed > 0, "no cancelling pair composed for seed {seed}");
    }
}
