//! Generators for the benchmark circuit families of the paper's evaluation.
//!
//! Each function returns a named [`Circuit`]:
//!
//! * [`qft`] — the Quantum Fourier Transform ("QFT 48/64" rows),
//! * [`grover`] — Grover search ("Grover 5–9" rows),
//! * [`supremacy_2d`] — Google-style random supremacy circuits
//!   ("Supremacy 4x4 d" rows),
//! * [`trotter_heisenberg`] — Trotterized 2-D lattice Hamiltonian evolution
//!   (our substitution for "Quantum Chemistry m×n", see DESIGN.md),
//! * [`toffoli_network`] — seeded reversible Toffoli netlists (our
//!   substitution for the RevLib rows),
//! * [`random_clifford_t`] — random Clifford+T circuits,
//! * [`cuccaro_adder`] — the ripple-carry adder, a structured arithmetic
//!   workload,
//! * [`clifford_adder`] — its stabilizer-simulable surrogate (Toffolis
//!   replaced by a Clifford motif), the stab engine's benchmark family,
//! * [`ghz`] / [`bell`] — small entangling circuits for quick starts.

mod arithmetic;
mod chemistry;
mod grover;
mod oracles;
mod qft;
mod qpe;
mod random;
mod supremacy;

pub use arithmetic::{clifford_adder, cuccaro_adder, multiplier};
pub use chemistry::trotter_heisenberg;
pub use grover::{grover, optimal_grover_iterations};
pub use oracles::{bernstein_vazirani, deutsch_jozsa};
pub use qft::qft;
pub use qpe::phase_estimation;
pub use random::{random_clifford_t, toffoli_network};
pub use supremacy::supremacy_2d;

use crate::circuit::Circuit;

/// The 2-qubit Bell-pair preparation circuit.
///
/// # Examples
///
/// ```
/// let c = qcirc::generators::bell();
/// assert_eq!(c.len(), 2);
/// ```
#[must_use]
pub fn bell() -> Circuit {
    let mut c = Circuit::with_name(2, "bell");
    c.h(0).cx(0, 1);
    c
}

/// The `n`-qubit GHZ-state preparation circuit (H then a CX ladder).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::with_name(n, format!("ghz_{n}"));
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// The `n`-qubit W-state preparation circuit: the uniform superposition of
/// all single-excitation basis states, built from one X, a cascade of
/// controlled `Ry` rotations and a CX ladder.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let c = qcirc::generators::w_state(4);
/// assert_eq!(c.len(), 1 + 3 + 3);
/// ```
#[must_use]
pub fn w_state(n: usize) -> Circuit {
    assert!(n > 0, "a W state needs at least one qubit");
    let mut c = Circuit::with_name(n, format!("w_{n}"));
    c.x(0);
    for i in 0..n - 1 {
        // Move amplitude √(1/(n−i)) of the excitation one qubit onward.
        let theta = 2.0 * ((1.0 / (n - i) as f64).sqrt()).acos();
        c.push(crate::gate::Gate::controlled(
            crate::gate::GateKind::Ry(theta),
            vec![i],
            i + 1,
        ));
        c.cx(i + 1, i);
    }
    c
}

/// The 3-qubit example circuit of the paper's Fig. 1b: eight gates, only
/// Hadamard and CX.
///
/// Used by the `fig1_example` harness and locked down by integration tests
/// against the matrix printed in Fig. 1c.
#[must_use]
pub fn figure1b() -> Circuit {
    // Fig. 1b (qubits drawn top-to-bottom as q2, q1, q0): H on the middle
    // qubit, then a CX cascade realizing the unitary of Fig. 1c.
    let mut c = Circuit::with_name(3, "fig1b");
    c.h(1).cx(1, 0).h(0).h(2).cx(2, 1).h(1).h(2).cx(2, 0);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_and_ghz_shapes() {
        assert_eq!(bell().n_qubits(), 2);
        let g = ghz(5);
        assert_eq!(g.n_qubits(), 5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.name(), "ghz_5");
    }

    #[test]
    fn w_state_is_uniform_over_single_excitations() {
        let n = 4;
        let col = crate::dense::column(&w_state(n), 0);
        let expected = 1.0 / n as f64;
        for (i, amp) in col.iter().enumerate() {
            let is_single_excitation = i.count_ones() == 1;
            if is_single_excitation {
                assert!(
                    (amp.norm_sqr() - expected).abs() < 1e-9,
                    "|{i:04b}⟩: {}",
                    amp.norm_sqr()
                );
            } else {
                assert!(amp.approx_zero(), "|{i:04b}⟩ should be empty");
            }
        }
    }

    #[test]
    fn figure1b_matches_paper_shape() {
        let c = figure1b();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.len(), 8);
        // Only H and CX gates, as in the paper.
        for g in c.gates() {
            let name = g.kind().mnemonic();
            assert!(name == "h" || name == "x", "unexpected gate {g}");
        }
    }
}
