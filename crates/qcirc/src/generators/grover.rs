//! Grover's search algorithm.

use std::f64::consts::FRAC_PI_4;

use crate::circuit::Circuit;

/// The asymptotically optimal number of Grover iterations for a single
/// marked element among `2^k` candidates: `⌊π/4·√(2^k)⌋` (at least 1).
#[must_use]
pub fn optimal_grover_iterations(k: usize) -> usize {
    ((FRAC_PI_4 * f64::powi(2.0, k as i32).sqrt()).floor() as usize).max(1)
}

/// Builds a Grover search circuit over `k` search qubits looking for the
/// computational basis element `marked`, running `iterations` rounds of
/// oracle + diffusion.
///
/// The oracle flips the phase of `|marked⟩` with a multi-controlled Z
/// (controls conjugated with X where the marked bit is 0); the diffusion
/// operator is the standard `H X (MCZ) X H` construction. Multi-controlled
/// gates are kept at the IR level — run
/// [`decompose`](crate::decompose::decompose_to_cx_and_single_qubit) to
/// lower them to the device basis (which is what inflates the paper's
/// Grover gate counts).
///
/// # Panics
///
/// Panics if `k < 2` or `marked >= 2^k`.
///
/// # Examples
///
/// ```
/// use qcirc::generators::{grover, optimal_grover_iterations};
/// let c = grover(4, 0b1010, optimal_grover_iterations(4));
/// assert_eq!(c.n_qubits(), 4);
/// ```
#[must_use]
pub fn grover(k: usize, marked: u64, iterations: usize) -> Circuit {
    assert!(k >= 2, "Grover search needs at least 2 qubits");
    assert!(
        marked < (1u64 << k),
        "marked element {marked} out of range for {k} qubits"
    );
    let mut c = Circuit::with_name(k, format!("grover_{k}"));
    // Uniform superposition.
    for q in 0..k {
        c.h(q);
    }
    for _ in 0..iterations {
        // Oracle: phase-flip |marked⟩.
        phase_flip(&mut c, k, marked);
        // Diffusion: 2|s⟩⟨s| − I = H^⊗k · (phase-flip |0…0⟩) · H^⊗k.
        for q in 0..k {
            c.h(q);
        }
        phase_flip(&mut c, k, 0);
        for q in 0..k {
            c.h(q);
        }
    }
    c
}

/// Appends gates flipping the phase of exactly the basis state `pattern`.
fn phase_flip(c: &mut Circuit, k: usize, pattern: u64) {
    let zero_bits: Vec<usize> = (0..k).filter(|&q| (pattern >> q) & 1 == 0).collect();
    for &q in &zero_bits {
        c.x(q);
    }
    if k == 1 {
        c.z(0);
    } else {
        let controls: Vec<usize> = (0..k - 1).collect();
        c.mcz(controls, k - 1);
    }
    for &q in &zero_bits {
        c.x(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_count_grows_with_sqrt() {
        assert_eq!(optimal_grover_iterations(2), 1);
        assert_eq!(optimal_grover_iterations(4), 3);
        assert_eq!(optimal_grover_iterations(6), 6);
        assert_eq!(optimal_grover_iterations(8), 12);
    }

    #[test]
    fn structure_scales_linearly_with_iterations() {
        let one = grover(3, 5, 1).len();
        let two = grover(3, 5, 2).len();
        let per_round = two - one;
        let three = grover(3, 5, 3).len();
        assert_eq!(three - two, per_round);
    }

    #[test]
    fn marked_element_affects_oracle_only() {
        // Patterns with more zero bits need more X conjugation.
        let all_ones = grover(4, 0b1111, 1).len();
        let all_zeros = grover(4, 0b0000, 1).len();
        assert_eq!(all_zeros, all_ones + 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn marked_out_of_range_rejected() {
        let _ = grover(3, 8, 1);
    }

    #[test]
    fn uses_multi_controlled_z() {
        let c = grover(5, 0, 1);
        assert_eq!(c.max_controls(), 4);
        assert!(!c.is_elementary());
    }
}
