//! Verify a complete design flow: decompose a Trotterized-chemistry circuit
//! to the device basis, map it to a grid architecture, optimize it — then
//! prove each stage preserved the functionality.
//!
//! Run with `cargo run -p qcec-examples --bin verify_mapping`.

use qcec::check_equivalence_default;
use qcirc::mapping::{route, CouplingMap, RouterOptions};
use qcirc::{decompose, generators, optimize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The algorithm-level circuit: 8-qubit lattice-model time evolution.
    let algorithm = generators::trotter_heisenberg(2, 4, 2, 0.1, 0.5);
    println!(
        "algorithm:  '{}', {} qubits, {} gates, depth {}",
        algorithm.name(),
        algorithm.n_qubits(),
        algorithm.len(),
        algorithm.depth()
    );

    // Stage 1: decomposition to {1q, CX}.
    let lowered = decompose::decompose_to_cx_and_single_qubit(&algorithm);
    println!(
        "decomposed: {} gates (elementary: {})",
        lowered.len(),
        lowered.is_elementary()
    );
    let r1 = check_equivalence_default(&algorithm, &lowered)?;
    println!("  stage check: {r1}");

    // Stage 2: mapping to a linear device (the grid edges of the lattice
    // model are *not* all native on a line, so SWAPs get inserted).
    let device = CouplingMap::linear(8);
    let routed = route(&lowered, &device, RouterOptions::default())?;
    println!(
        "mapped:     {} gates ({} SWAPs inserted, device '{}')",
        routed.circuit.len(),
        routed.swap_count,
        device.name()
    );
    let r2 = check_equivalence_default(&lowered, &routed.circuit)?;
    println!("  stage check: {r2}");

    // Stage 3: optimization.
    let optimized = optimize::optimize(&routed.circuit);
    println!(
        "optimized:  {} gates ({} removed)",
        optimized.len(),
        routed.circuit.len() - optimized.len()
    );
    let r3 = check_equivalence_default(&routed.circuit, &optimized)?;
    println!("  stage check: {r3}");

    // End-to-end: algorithm vs final artifact.
    let end_to_end = check_equivalence_default(&algorithm, &optimized)?;
    println!("\nend-to-end: {end_to_end}");
    assert!(end_to_end.outcome.is_equivalent());

    // The same chain through the pipeline API, with a deliberately broken
    // extra stage — the report pinpoints the faulty tool.
    let mut broken = optimized.clone();
    broken.x(3);
    let report = qcec::pipeline::verify_stages(
        &[
            ("algorithm", algorithm),
            ("decomposed", lowered),
            ("mapped", routed.circuit),
            ("optimized", optimized),
            ("buggy-tool-output", broken),
        ],
        &qcec::Config::default(),
    )?;
    println!("\npipeline report:\n{report}");
    let broken_stage = report
        .first_broken_stage()
        .expect("the injected bug must be found");
    println!("→ first broken stage: '{}'", broken_stage.name);
    assert_eq!(broken_stage.name, "buggy-tool-output");
    Ok(())
}
