//! Simulation-driven equivalence checking of quantum circuits.
//!
//! This crate implements the contribution of Burgholzer & Wille, *The Power
//! of Simulation for Equivalence Checking in Quantum Computing* (DAC 2020):
//! before (or instead of) constructing the complete `2ⁿ×2ⁿ` functionality
//! of two circuits, simulate both on `r ≪ 2ⁿ` random computational basis
//! states and compare the outputs.
//!
//! Because quantum operations are reversible, design-flow errors are rarely
//! masked: a difference gate with `c` controls corrupts `2^{n−c}` of the
//! `2ⁿ` unitary columns ([`theory`]), so realistic errors (altered
//! single-qubit gates, misplaced CX) are detected with probability ≈ 1 *per
//! simulation*. The resulting flow ([`check_equivalence`], paper Fig. 3):
//!
//! 1. `r` random basis-state simulations (default `r = 10`) — disagreement
//!    yields a proven [`Outcome::NotEquivalent`] with a counterexample;
//! 2. otherwise a complete DD-based check (`qdd`) under a deadline —
//!    [`Outcome::Equivalent`] / [`Outcome::EquivalentUpToGlobalPhase`];
//! 3. on timeout, [`Outcome::ProbablyEquivalent`] — a *usable* answer where
//!    the state of the art reports nothing.
//!
//! # Examples
//!
//! Verify a mapped circuit and catch an injected bug:
//!
//! ```
//! use qcec::{check_equivalence_default, Outcome};
//!
//! # fn main() -> Result<(), qcec::FlowError> {
//! let g = qcirc::generators::ghz(4);
//! let mapped = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(4));
//! let ok = check_equivalence_default(&g, &mapped.circuit)?;
//! assert!(ok.outcome.is_equivalent());
//!
//! let mut buggy = mapped.circuit.clone();
//! buggy.x(2);
//! let bad = check_equivalence_default(&g, &buggy)?;
//! assert!(bad.outcome.is_not_equivalent());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod campaign;
mod config;
pub mod diagnose;
mod flow;
mod functional;
mod outcome;
pub mod peel;
pub mod pipeline;
pub mod pool;
pub mod report;
pub mod scheduler;
pub mod service;
mod sim_check;
pub mod theory;

pub use backend::{
    auto_backend, MpsBackend, ProbeMetrics, ProbeOutcome, SimBackend, StabBackend,
    StatevectorBackend,
};
pub use config::{ApplicationScheme, BackendKind, Config, Criterion, Fallback, StimulusStrategy};
pub use flow::{check_equivalence, check_equivalence_default, FlowError};
pub use functional::{run_functional_check, run_functional_check_cancellable, FunctionalVerdict};
pub use outcome::{AbortReason, Counterexample, FlowResult, FlowStats, Mismatch, Outcome};
pub use service::{
    CachedVerdict, CircuitId, ConfigDigest, EquivalenceCheckingManager, EvictionPolicy, JobKey,
    VerdictCache,
};
pub use sim_check::{draw_stimuli, run_simulations, run_simulations_on, SimVerdict};
// The stimulus vocabulary types, so downstream code can match on
// counterexamples and replay stimuli without naming `qstim` directly.
pub use qstim::{ProductAngles, Stimulus, StimulusSource};
// The DD probe engine, which implements [`SimBackend`] here (the trait is
// local, the type lives with the decision-diagram package it drives).
pub use qdd::DdBackend;
