//! Detect an injected design-flow bug — the paper's core scenario.
//!
//! A supremacy-style circuit is mapped to a grid device; a seeded "mapping
//! tool bug" (a misplaced CX, as in the paper's Example 6) is injected into
//! the mapped artifact. The sole complete check grinds on the 16-qubit
//! unstructured circuit, while one random simulation exposes the bug.
//!
//! Run with `cargo run --release -p qcec-examples --bin detect_bug`.

use std::time::{Duration, Instant};

use qcec::{Config, Fallback, Outcome};
use qcirc::errors::{inject, ErrorKind};
use qcirc::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::supremacy_2d(4, 4, 10, 42);
    // Lower to the CX basis and map — the standard flow (CZ has no native
    // spelling on CX-based devices).
    let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&g);
    let routed = qcirc::mapping::route(
        &lowered,
        &qcirc::mapping::CouplingMap::grid(4, 4),
        Default::default(),
    )?;
    let g = g.widened(routed.circuit.n_qubits());
    println!(
        "circuit: '{}', {} qubits, |G| = {}, |G'| = {}",
        g.name(),
        g.n_qubits(),
        g.len(),
        routed.circuit.len()
    );

    // The mapping tool "bug".
    let mut rng = StdRng::seed_from_u64(7);
    let (buggy, record) = inject(&routed.circuit, ErrorKind::MisplaceCx, &mut rng)?;
    println!("injected: {record}");

    // Attempt 1: the state-of-the-art complete check, small budget.
    let budget = Duration::from_secs(5);
    let start = Instant::now();
    let mut package = qdd::Package::with_node_limit(g.n_qubits(), 1_000_000);
    let ec = qdd::check_equivalence_alternating(&mut package, &g, &buggy, Some(budget));
    match ec {
        Ok(v) => println!(
            "complete DD check: {v} after {:.2} s",
            start.elapsed().as_secs_f64()
        ),
        Err(abort) => println!(
            "complete DD check: gave up after {:.2} s ({abort}) — no conclusion at all",
            start.elapsed().as_secs_f64()
        ),
    }

    // Attempt 2: the proposed flow (simulation stage only to show timing).
    let config = Config::new().with_fallback(Fallback::None).with_seed(1);
    let start = Instant::now();
    let result = qcec::check_equivalence(&g, &buggy, &config)?;
    println!(
        "simulation flow:   {} after {:.3} s",
        result.outcome,
        start.elapsed().as_secs_f64()
    );
    match result.outcome {
        Outcome::NotEquivalent {
            counterexample: Some(ce),
        } => {
            println!(
                "→ non-equivalence proven by simulation run #{} on stimulus {} (fidelity {:.4})",
                ce.run, ce.stimulus, ce.fidelity
            );
            Ok(())
        }
        other => Err(format!("expected a counterexample, got {other}").into()),
    }
}
