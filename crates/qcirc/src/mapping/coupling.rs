//! Device coupling maps: which physical qubit pairs support 2-qubit gates.

use std::collections::VecDeque;
use std::fmt;

/// An undirected device connectivity graph with precomputed all-pairs
/// shortest-path distances (BFS, unit edge weights).
///
/// # Examples
///
/// ```
/// use qcirc::mapping::CouplingMap;
///
/// let line = CouplingMap::linear(4);
/// assert!(line.are_adjacent(1, 2));
/// assert_eq!(line.distance(0, 3), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    n: usize,
    adjacency: Vec<Vec<usize>>,
    dist: Vec<Vec<usize>>,
    name: String,
}

impl CouplingMap {
    /// Builds a coupling map from an explicit undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, an edge endpoint is out of range, an edge is a
    /// self-loop, or the graph is disconnected (a disconnected device cannot
    /// route arbitrary circuits).
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)], name: impl Into<String>) -> Self {
        assert!(n > 0, "a device needs at least one qubit");
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} qubits");
            assert!(a != b, "self-loop edge ({a},{b})");
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        let dist = all_pairs_bfs(&adjacency);
        let map = CouplingMap {
            n,
            adjacency,
            dist,
            name: name.into(),
        };
        assert!(
            map.is_connected(),
            "coupling map '{}' is disconnected",
            map.name
        );
        map
    }

    /// A path (1-D chain) of `n` qubits: `0−1−2−…`.
    #[must_use]
    pub fn linear(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::from_edges(n, &edges, format!("linear_{n}"))
    }

    /// A ring of `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    #[must_use]
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 qubits");
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        CouplingMap::from_edges(n, &edges, format!("ring_{n}"))
    }

    /// A `rows × cols` rectangular grid (row-major qubit numbering).
    #[must_use]
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        let mut edges = Vec::new();
        let q = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((q(r, c), q(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((q(r, c), q(r + 1, c)));
                }
            }
        }
        CouplingMap::from_edges(rows * cols, &edges, format!("grid_{rows}x{cols}"))
    }

    /// The 16-qubit "IBM QX5"-style ladder used in the mapping literature
    /// (\[6\], \[9\]): two rows of eight with rung connections.
    #[must_use]
    pub fn ibm_qx5() -> Self {
        // Topologically a 2×8 grid (directionality of the physical CNOTs is
        // abstracted away; direction fixes are plain H conjugations).
        let mut map = CouplingMap::grid(2, 8);
        map.name = "ibm_qx5".into();
        map
    }

    /// The number of physical qubits.
    #[inline]
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The device name.
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns `true` if a 2-qubit gate can act directly on `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "qubit index out of range");
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// The neighbours of physical qubit `q`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Shortest-path distance (in hops) between two physical qubits.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        assert!(a < self.n && b < self.n, "qubit index out of range");
        self.dist[a][b]
    }

    /// One shortest path from `a` to `b`, inclusive of both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn shortest_path(&self, a: usize, b: usize) -> Vec<usize> {
        assert!(a < self.n && b < self.n, "qubit index out of range");
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            // Greedy descent over the distance table is exact for BFS
            // distances: some neighbour is always one hop closer.
            let next = *self.adjacency[cur]
                .iter()
                .find(|&&nb| self.dist[nb][b] + 1 == self.dist[cur][b])
                .expect("connected map always has a descending neighbour");
            path.push(next);
            cur = next;
        }
        path
    }

    /// The total number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    fn is_connected(&self) -> bool {
        self.dist[0].iter().all(|&d| d != usize::MAX)
    }
}

impl fmt::Display for CouplingMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} edges)",
            self.name,
            self.n,
            self.edge_count()
        )
    }
}

fn all_pairs_bfs(adjacency: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adjacency.len();
    let mut dist = vec![vec![usize::MAX; n]; n];
    for (start, row) in dist.iter_mut().enumerate() {
        row[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &adjacency[u] {
                if row[v] == usize::MAX {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_distances() {
        let m = CouplingMap::linear(5);
        assert_eq!(m.distance(0, 4), 4);
        assert_eq!(m.distance(2, 2), 0);
        assert!(m.are_adjacent(0, 1));
        assert!(!m.are_adjacent(0, 2));
        assert_eq!(m.edge_count(), 4);
    }

    #[test]
    fn ring_wraps_around() {
        let m = CouplingMap::ring(6);
        assert_eq!(m.distance(0, 5), 1);
        assert_eq!(m.distance(0, 3), 3);
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let m = CouplingMap::grid(3, 4);
        // (0,0)=q0 to (2,3)=q11: 2+3 hops.
        assert_eq!(m.distance(0, 11), 5);
        assert!(m.are_adjacent(0, 1));
        assert!(m.are_adjacent(0, 4));
        assert!(!m.are_adjacent(0, 5));
    }

    #[test]
    fn qx5_shape() {
        let m = CouplingMap::ibm_qx5();
        assert_eq!(m.n_qubits(), 16);
        assert_eq!(m.name(), "ibm_qx5");
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let m = CouplingMap::grid(3, 3);
        let p = m.shortest_path(0, 8);
        assert_eq!(p.len(), m.distance(0, 8) + 1);
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 8);
        for w in p.windows(2) {
            assert!(m.are_adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn trivial_path_is_single_node() {
        let m = CouplingMap::linear(3);
        assert_eq!(m.shortest_path(1, 1), vec![1]);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_rejected() {
        let _ = CouplingMap::from_edges(4, &[(0, 1), (2, 3)], "broken");
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = CouplingMap::from_edges(2, &[(1, 1)], "loop");
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let m = CouplingMap::from_edges(2, &[(0, 1), (1, 0), (0, 1)], "dup");
        assert_eq!(m.edge_count(), 1);
    }
}
