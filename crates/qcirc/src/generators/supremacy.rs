//! Google-style "quantum supremacy" random circuits on a 2-D grid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Builds a supremacy-style random circuit on a `rows × cols` qubit grid
/// with `cycles` cycles.
///
/// Each cycle applies a random single-qubit gate from `{√X, √Y, T}` to every
/// qubit (never repeating the gate the qubit received in the previous
/// cycle, per the original protocol) followed by a layer of CZ gates along
/// one of four alternating grid-edge patterns. A final Hadamard layer opens
/// the circuit, mirroring the published construction. The circuit is fully
/// determined by `seed`.
///
/// The paper's "Supremacy 4x4 d" rows correspond to
/// `supremacy_2d(4, 4, d, seed)`.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
///
/// # Examples
///
/// ```
/// let c = qcirc::generators::supremacy_2d(4, 4, 10, 42);
/// assert_eq!(c.n_qubits(), 16);
/// ```
#[must_use]
pub fn supremacy_2d(rows: usize, cols: usize, cycles: usize, seed: u64) -> Circuit {
    assert!(rows > 0 && cols > 0, "grid must be non-empty");
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("supremacy_{rows}x{cols}_{cycles}"));
    let qubit = |r: usize, col: usize| r * cols + col;

    // Opening Hadamard layer.
    for q in 0..n {
        c.h(q);
    }

    // Track the previous single-qubit gate per qubit to avoid repeats.
    let choices = [GateKind::Sx, GateKind::Sy, GateKind::T];
    let mut prev: Vec<Option<usize>> = vec![None; n];

    for cycle in 0..cycles {
        // Single-qubit layer.
        for (q, prev_q) in prev.iter_mut().enumerate() {
            let pick = loop {
                let k = rng.gen_range(0..choices.len());
                if *prev_q != Some(k) {
                    break k;
                }
            };
            *prev_q = Some(pick);
            c.push(crate::gate::Gate::single(choices[pick], q));
        }
        // Entangling layer: alternate over four edge patterns
        // (horizontal even/odd columns, vertical even/odd rows).
        match cycle % 4 {
            0 => {
                for r in 0..rows {
                    for col in (0..cols.saturating_sub(1)).step_by(2) {
                        c.cz(qubit(r, col), qubit(r, col + 1));
                    }
                }
            }
            1 => {
                for r in (0..rows.saturating_sub(1)).step_by(2) {
                    for col in 0..cols {
                        c.cz(qubit(r, col), qubit(r + 1, col));
                    }
                }
            }
            2 => {
                for r in 0..rows {
                    for col in (1..cols.saturating_sub(1)).step_by(2) {
                        c.cz(qubit(r, col), qubit(r, col + 1));
                    }
                }
            }
            _ => {
                for r in (1..rows.saturating_sub(1)).step_by(2) {
                    for col in 0..cols {
                        c.cz(qubit(r, col), qubit(r + 1, col));
                    }
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a = supremacy_2d(3, 3, 8, 7);
        let b = supremacy_2d(3, 3, 8, 7);
        assert_eq!(a, b);
        let c = supremacy_2d(3, 3, 8, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn qubit_count_is_grid_size() {
        assert_eq!(supremacy_2d(4, 4, 5, 1).n_qubits(), 16);
        assert_eq!(supremacy_2d(2, 5, 5, 1).n_qubits(), 10);
    }

    #[test]
    fn single_qubit_layer_never_repeats_per_qubit() {
        let c = supremacy_2d(2, 2, 20, 3);
        // Collect the per-qubit sequence of 1q gates after the H layer.
        let mut seqs: Vec<Vec<&'static str>> = vec![Vec::new(); 4];
        for g in c.gates().iter().skip(4) {
            if g.width() == 1 {
                seqs[g.target()].push(g.kind().mnemonic());
            }
        }
        for seq in seqs {
            for w in seq.windows(2) {
                assert_ne!(w[0], w[1], "repeated 1q gate in consecutive cycles");
            }
        }
    }

    #[test]
    fn cz_layers_respect_grid_adjacency() {
        let rows = 3;
        let cols = 4;
        let c = supremacy_2d(rows, cols, 12, 5);
        for g in c.gates() {
            if g.width() == 2 {
                let a = g.controls()[0];
                let b = g.targets()[0];
                let (ra, ca) = (a / cols, a % cols);
                let (rb, cb) = (b / cols, b % cols);
                let dist = ra.abs_diff(rb) + ca.abs_diff(cb);
                assert_eq!(dist, 1, "CZ on non-adjacent qubits {a},{b}");
            }
        }
    }

    #[test]
    fn gate_count_grows_with_cycles() {
        let short = supremacy_2d(4, 4, 5, 9).len();
        let long = supremacy_2d(4, 4, 50, 9).len();
        assert!(long > short * 5);
    }
}
