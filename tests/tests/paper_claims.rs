//! Tests that pin down the paper's quantitative claims on small instances.

use qcec::theory::{
    controlled_difference_gate, differing_columns, predicted_detection_probability,
};
use qcec::{check_equivalence_default, Config, Fallback, Outcome};
use qcirc::{generators, Circuit};

/// Section IV-A: a difference gate with `c` controls corrupts exactly
/// `2^{n−c}` columns (Examples 7 and 8 are the endpoints).
#[test]
fn column_corruption_law() {
    let n = 6;
    for c in 0..n {
        let reference = Circuit::new(n);
        let mut with_error = Circuit::new(n);
        with_error.append(&controlled_difference_gate(n, c));
        assert_eq!(differing_columns(&reference, &with_error), 1 << (n - c));
    }
}

/// Example 7: when the *difference* `D = U†U'` is a bare single-qubit gate
/// (the error sits at the circuit input, so `U' = U·X_q` and `D = X_q`),
/// every column differs and 100% of simulations detect it.
#[test]
fn single_qubit_errors_are_always_detected() {
    let g = generators::qft(6, true);
    for q in 0..6 {
        let mut buggy = g.clone();
        buggy.insert(0, qcirc::Gate::single(qcirc::GateKind::X, q));
        for seed in 0..5 {
            let config = Config::new()
                .with_simulations(1)
                .with_seed(seed)
                .with_fallback(Fallback::None);
            let result = qcec::check_equivalence(&g, &buggy, &config).unwrap();
            assert!(
                result.outcome.is_not_equivalent(),
                "qubit {q}, seed {seed}: single-qubit error survived a simulation"
            );
        }
    }
}

/// Example 8: the (n−1)-controlled error is the worst case — most single
/// random simulations miss it.
#[test]
fn fully_controlled_error_is_the_worst_case() {
    let n = 6;
    let g = Circuit::new(n);
    let mut buggy = Circuit::new(n);
    buggy.append(&controlled_difference_gate(n, n - 1));
    let mut missed = 0;
    let trials = 30;
    for seed in 0..trials {
        let config = Config::new()
            .with_simulations(1)
            .with_seed(seed)
            .with_fallback(Fallback::None);
        let result = qcec::check_equivalence(&g, &buggy, &config).unwrap();
        if !result.outcome.is_not_equivalent() {
            missed += 1;
        }
    }
    // Detection probability is 2/2⁶ ≈ 3%; missing most runs is expected.
    assert!(
        missed > trials / 2,
        "worst case was detected too often ({missed}/{trials} missed)"
    );
    // The theory module predicts the same.
    assert!(predicted_detection_probability(n - 1) < 0.05);
}

/// Fig. 1: the worked example — G, its mapped variant, and the Example 6
/// bug whose Ũ' differs from U in every column.
#[test]
fn figure1_worked_example() {
    let g = generators::figure1b();
    let u = qsim::unitary(&g);
    assert!(u.is_unitary());

    // Fig. 2: mapping to a line inserts SWAPs but preserves U.
    let routed = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(3));
    assert!(routed.swap_count > 0, "the example needs inserted SWAPs");
    assert!(qsim::unitary(&routed.circuit).approx_eq(&u));

    // Example 6: misapply the last SWAP → Ũ' differs in many columns and
    // the flow catches it by simulation.
    let mut buggy = routed.circuit.clone();
    let idx = buggy
        .gates()
        .iter()
        .rposition(|gate| gate.kind().mnemonic() == "swap")
        .expect("mapped circuit contains a SWAP");
    let old = buggy.gates()[idx].clone();
    let (a, b) = (old.targets()[0], old.targets()[1]);
    let wrong = 3 - a - b;
    buggy.replace(idx, qcirc::Gate::swap(a.min(wrong), a.max(wrong)));

    let u_bug = qsim::unitary(&buggy);
    let differing = u.differing_columns(&u_bug);
    assert!(
        differing >= 4,
        "the Example-6 bug should corrupt most columns, got {differing}/8"
    );
    let result = check_equivalence_default(&g, &buggy).unwrap();
    match result.outcome {
        Outcome::NotEquivalent {
            counterexample: Some(ce),
        } => assert!(ce.run <= 3, "needed {} runs", ce.run),
        other => panic!("bug not detected: {other}"),
    }
}

/// Table Ib's punchline: ten simulations cost a negligible fraction of the
/// complete check on DD-hostile circuits.
#[test]
fn simulation_overhead_is_negligible_on_hard_instances() {
    use std::time::Instant;
    let g = generators::supremacy_2d(3, 4, 12, 9);

    let sim_start = Instant::now();
    let config = Config::new()
        .with_fallback(Fallback::None)
        .with_simulations(10);
    let result = qcec::check_equivalence(&g, &g, &config).unwrap();
    let t_sim = sim_start.elapsed();
    assert!(matches!(result.outcome, Outcome::ProbablyEquivalent { .. }));

    let ec_start = Instant::now();
    let mut p = qdd::Package::with_node_limit(12, 300_000);
    let ec = qdd::check_equivalence_construct(&mut p, &g, &g, None);
    let t_ec = ec_start.elapsed();
    // Construct-and-compare either exhausts its node budget or takes far
    // longer than the simulations.
    match ec {
        Err(_) => {}
        Ok(_) => assert!(t_ec > t_sim, "t_ec {t_ec:?} vs t_sim {t_sim:?}"),
    }
}

/// The "timeout" outcome carries the number of agreeing simulations — the
/// paper's "strong indication" of equivalence.
#[test]
fn probable_equivalence_reports_evidence() {
    let g = generators::supremacy_2d(3, 3, 8, 4);
    let config = Config::new()
        .with_simulations(7)
        .with_deadline(Some(std::time::Duration::ZERO));
    let result = qcec::check_equivalence(&g, &g, &config).unwrap();
    match result.outcome {
        Outcome::ProbablyEquivalent {
            passed_simulations, ..
        } => assert_eq!(passed_simulations, 7),
        other => panic!("expected probable equivalence, got {other}"),
    }
}
