//! Gate decomposition: lowering circuits to the device basis `{1q, CX}`.
//!
//! This is the first design-flow step the paper verifies (\[2\]–\[5\]): an
//! algorithmic circuit full of multi-controlled operations is rewritten into
//! the elementary gate set of the target device. Two strategies are
//! provided:
//!
//! * [`decompose_to_cx_and_single_qubit`] — ancilla-free. Multi-controlled
//!   gates are expanded by the exact phase-cascade recursion, which is
//!   *exponential* in the number of controls (fine up to ~10 controls).
//! * [`decompose_with_dirty_ancillas`] — widens the register by
//!   `max(0, c_max − 2)` ancilla qubits and lowers every multi-controlled X
//!   with the Barenco 4(m−2)-Toffoli dirty-ancilla V-chain, which is exact
//!   as a *full* unitary (ancillas in any state are restored), so strict
//!   equivalence checking remains sound.
//!
//! Building blocks (exposed for reuse and tests): the [`zyz`] Euler
//! decomposition of a single-qubit unitary and the ABC construction of a
//! singly-controlled unitary ([`controlled_unitary_gates`]).

use qnum::{approx, Matrix2};

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// The Euler angles `(α, β, γ, δ)` with `U = e^{iα} Rz(β) · Ry(γ) · Rz(δ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZyzAngles {
    /// Global phase `α`.
    pub alpha: f64,
    /// First (leftmost) Z rotation `β`.
    pub beta: f64,
    /// Middle Y rotation `γ`.
    pub gamma: f64,
    /// Last (rightmost) Z rotation `δ`.
    pub delta: f64,
}

/// Computes the ZYZ Euler decomposition of a single-qubit unitary:
/// `U = e^{iα} · Rz(β) · Ry(γ) · Rz(δ)`.
///
/// # Panics
///
/// Panics in debug builds if `u` is not unitary.
///
/// # Examples
///
/// ```
/// use qcirc::decompose::zyz;
/// use qnum::Matrix2;
///
/// let angles = zyz(&Matrix2::hadamard());
/// let rebuilt = Matrix2::rz(angles.beta)
///     .mul(&Matrix2::ry(angles.gamma))
///     .mul(&Matrix2::rz(angles.delta))
///     .scale(qnum::Complex::cis(angles.alpha));
/// assert!(rebuilt.approx_eq(&Matrix2::hadamard()));
/// ```
#[must_use]
pub fn zyz(u: &Matrix2) -> ZyzAngles {
    debug_assert!(u.is_unitary(), "zyz requires a unitary matrix");
    // Pull out the global phase: det(U) = e^{2iα}.
    let det = u.entry(0, 0) * u.entry(1, 1) - u.entry(0, 1) * u.entry(1, 0);
    let alpha = det.arg() / 2.0;
    let v00 = u.entry(0, 0) * qnum::Complex::cis(-alpha);
    let v10 = u.entry(1, 0) * qnum::Complex::cis(-alpha);
    // V = [[e^{-i(β+δ)/2} cos(γ/2), −e^{i(δ−β)/2} sin(γ/2)],
    //      [e^{i(β−δ)/2} sin(γ/2),  e^{i(β+δ)/2} cos(γ/2)]]
    let gamma = 2.0 * v10.abs().atan2(v00.abs());
    let (beta, delta) = if approx::approx_zero(v10.abs()) {
        // γ ≈ 0: only β+δ is determined.
        (-2.0 * v00.arg(), 0.0)
    } else if approx::approx_zero(v00.abs()) {
        // γ ≈ π: only β−δ is determined.
        (2.0 * v10.arg(), 0.0)
    } else {
        (v10.arg() - v00.arg(), -(v00.arg() + v10.arg()))
    };
    ZyzAngles {
        alpha,
        beta,
        gamma,
        delta,
    }
}

/// Returns the gate sequence implementing a singly-controlled `U` using the
/// ABC construction (Nielsen & Chuang §4.3):
/// `C(U) = P(α)_c · A_t · CX · B_t · CX · C_t` with `A·B·C = I` and
/// `A·X·B·X·C = e^{-iα} U`.
///
/// The output uses only single-qubit rotations, one phase gate and two CX —
/// i.e. it is already in the device basis.
#[must_use]
pub fn controlled_unitary_gates(control: usize, target: usize, u: &Matrix2) -> Vec<Gate> {
    let ZyzAngles {
        alpha,
        beta,
        gamma,
        delta,
    } = zyz(u);
    let mut out = Vec::with_capacity(8);
    // C = Rz((δ−β)/2)
    push_rz(&mut out, (delta - beta) / 2.0, target);
    out.push(Gate::controlled(GateKind::X, vec![control], target));
    // B = Ry(−γ/2) · Rz(−(δ+β)/2)
    push_rz(&mut out, -(delta + beta) / 2.0, target);
    push_ry(&mut out, -gamma / 2.0, target);
    out.push(Gate::controlled(GateKind::X, vec![control], target));
    // A = Rz(β) · Ry(γ/2)
    push_ry(&mut out, gamma / 2.0, target);
    push_rz(&mut out, beta, target);
    if !approx::approx_zero(alpha) {
        out.push(Gate::single(GateKind::Phase(alpha), control));
    }
    out
}

fn push_rz(out: &mut Vec<Gate>, theta: f64, q: usize) {
    if !approx::approx_zero(theta) {
        out.push(Gate::single(GateKind::Rz(theta), q));
    }
}

fn push_ry(out: &mut Vec<Gate>, theta: f64, q: usize) {
    if !approx::approx_zero(theta) {
        out.push(Gate::single(GateKind::Ry(theta), q));
    }
}

/// The standard 15-gate Clifford+T realization of the Toffoli gate.
fn toffoli_gates(a: usize, b: usize, t: usize) -> Vec<Gate> {
    let cx = |c: usize, t: usize| Gate::controlled(GateKind::X, vec![c], t);
    let g1 = |k: GateKind, q: usize| Gate::single(k, q);
    vec![
        g1(GateKind::H, t),
        cx(b, t),
        g1(GateKind::Tdg, t),
        cx(a, t),
        g1(GateKind::T, t),
        cx(b, t),
        g1(GateKind::Tdg, t),
        cx(a, t),
        g1(GateKind::T, b),
        g1(GateKind::T, t),
        g1(GateKind::H, t),
        cx(a, b),
        g1(GateKind::T, a),
        g1(GateKind::Tdg, b),
        cx(a, b),
    ]
}

/// Emits an ancilla-free multi-controlled phase `C^k P(λ)` by the exact
/// V–V† recursion (exponential in `k`).
fn mcp_gates(controls: &[usize], target: usize, lambda: f64, out: &mut Vec<Gate>) {
    match controls.len() {
        0 => out.push(Gate::single(GateKind::Phase(lambda), target)),
        1 => cp_gates(controls[0], target, lambda, out),
        _ => {
            let (last, rest) = controls.split_last().expect("len >= 2");
            cp_gates(*last, target, lambda / 2.0, out);
            mcx_free_gates(rest, *last, out);
            cp_gates(*last, target, -lambda / 2.0, out);
            mcx_free_gates(rest, *last, out);
            mcp_gates(rest, target, lambda / 2.0, out);
        }
    }
}

/// The 5-gate elementary realization of a controlled phase.
fn cp_gates(c: usize, t: usize, lambda: f64, out: &mut Vec<Gate>) {
    out.push(Gate::single(GateKind::Phase(lambda / 2.0), c));
    out.push(Gate::controlled(GateKind::X, vec![c], t));
    out.push(Gate::single(GateKind::Phase(-lambda / 2.0), t));
    out.push(Gate::controlled(GateKind::X, vec![c], t));
    out.push(Gate::single(GateKind::Phase(lambda / 2.0), t));
}

/// Ancilla-free multi-controlled X in the elementary basis.
fn mcx_free_gates(controls: &[usize], target: usize, out: &mut Vec<Gate>) {
    match controls.len() {
        0 => out.push(Gate::single(GateKind::X, target)),
        1 => out.push(Gate::controlled(GateKind::X, vec![controls[0]], target)),
        2 => out.extend(toffoli_gates(controls[0], controls[1], target)),
        _ => {
            // C^k X = H_t · C^k P(π) · H_t.
            out.push(Gate::single(GateKind::H, target));
            mcp_gates(controls, target, std::f64::consts::PI, out);
            out.push(Gate::single(GateKind::H, target));
        }
    }
}

/// Multi-controlled X with the Barenco dirty-ancilla V-chain:
/// `4(m−2)` Toffolis for `m ≥ 3` controls using `m − 2` ancillas *in any
/// state* (they are restored exactly, so the identity holds as a full
/// unitary). Falls back to CX/Toffoli for `m ≤ 2`.
///
/// # Panics
///
/// Panics if fewer than `m − 2` ancillas are supplied or if qubits collide.
pub fn mcx_dirty_ancilla_gates(
    controls: &[usize],
    target: usize,
    ancillas: &[usize],
    out: &mut Vec<Gate>,
) {
    let m = controls.len();
    match m {
        0 => out.push(Gate::single(GateKind::X, target)),
        1 => out.push(Gate::controlled(GateKind::X, vec![controls[0]], target)),
        2 => out.extend(toffoli_gates(controls[0], controls[1], target)),
        _ => {
            assert!(
                ancillas.len() >= m - 2,
                "dirty V-chain for {m} controls needs {} ancillas, got {}",
                m - 2,
                ancillas.len()
            );
            // Sweep: T_m, T_{m-1}, …, T_3, T_2, T_3, …, T_{m-1}; twice.
            // T_m   = CCX(c_m, a_{m-2} → target)
            // T_i   = CCX(c_i, a_{i-2} → a_{i-1})   for 3 ≤ i ≤ m−1
            // T_2   = CCX(c_1, c_2 → a_1)
            let t_gate = |i: usize| -> Vec<Gate> {
                match i {
                    2 => toffoli_gates(controls[0], controls[1], ancillas[0]),
                    i if i == m => toffoli_gates(controls[m - 1], ancillas[m - 3], target),
                    i => toffoli_gates(controls[i - 1], ancillas[i - 3], ancillas[i - 2]),
                }
            };
            for _ in 0..2 {
                out.extend(t_gate(m));
                for i in (3..m).rev() {
                    out.extend(t_gate(i));
                }
                out.extend(t_gate(2));
                for i in 3..m {
                    out.extend(t_gate(i));
                }
            }
        }
    }
}

/// How multi-controlled X gates are lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum McxStrategy {
    /// Ancilla-free exponential recursion.
    Free,
    /// Dirty-ancilla V-chain; the payload is the first ancilla index.
    DirtyAncillas { first: usize, count: usize },
}

/// Lowers a whole circuit to the elementary basis `{single-qubit, CX}`
/// without ancillas.
///
/// Gate-count growth is exponential in the largest control count, so this
/// suits circuits with at most ~10 controls — exactly the situations the
/// paper's decomposition step \[2\]–\[5\] handles on algorithm-level circuits.
///
/// # Examples
///
/// ```
/// use qcirc::{decompose, Circuit};
///
/// let mut c = Circuit::new(3);
/// c.ccx(0, 1, 2);
/// let lowered = decompose::decompose_to_cx_and_single_qubit(&c);
/// assert!(lowered.is_elementary());
/// ```
#[must_use]
pub fn decompose_to_cx_and_single_qubit(circuit: &Circuit) -> Circuit {
    lower_circuit(circuit, McxStrategy::Free)
}

/// Lowers a whole circuit to the elementary basis, widening the register by
/// `max(0, c_max − 2)` dirty ancilla qubits so multi-controlled X gates cost
/// only `4(m−2)` Toffolis each.
///
/// The V-chain restores ancillas of *any* state, so the result equals the
/// original circuit tensored with identity on the new ancilla qubits —
/// strict unitary equivalence is preserved (compare against
/// `original.widened(out.n_qubits())`). This mirrors how the paper's
/// Grover `k` rows end up on `n > k` qubits.
#[must_use]
pub fn decompose_with_dirty_ancillas(circuit: &Circuit) -> Circuit {
    let c_max = circuit.max_controls();
    let extra = c_max.saturating_sub(2);
    let strategy = if extra == 0 {
        McxStrategy::Free
    } else {
        McxStrategy::DirtyAncillas {
            first: circuit.n_qubits(),
            count: extra,
        }
    };
    let mut widened = circuit.clone().widened(circuit.n_qubits() + extra);
    widened.set_name(format!("{}_anc", circuit.name()));
    lower_circuit(&widened, strategy)
}

/// Lowers a single gate to the elementary `{1q, CX}` basis without
/// ancillas, appending the result to `out` (used by the QASM writer for
/// gates that have no standard spelling).
pub fn lower_gate_to_elementary(gate: &Gate, out: &mut Vec<Gate>) {
    lower_gate(gate, McxStrategy::Free, out);
}

fn lower_circuit(circuit: &Circuit, strategy: McxStrategy) -> Circuit {
    let mut out = Circuit::with_name(circuit.n_qubits(), format!("{}_elem", circuit.name()));
    let mut gates = Vec::new();
    for gate in circuit.gates() {
        lower_gate(gate, strategy, &mut gates);
    }
    out.extend(gates);
    out
}

fn lower_mcx(controls: &[usize], target: usize, strategy: McxStrategy, out: &mut Vec<Gate>) {
    match strategy {
        McxStrategy::Free => mcx_free_gates(controls, target, out),
        McxStrategy::DirtyAncillas { first, count } => {
            if controls.len() <= 2 {
                mcx_free_gates(controls, target, out);
            } else {
                // Pick ancillas disjoint from the gate's own qubits.
                let ancillas: Vec<usize> = (first..first + count)
                    .filter(|a| *a != target && !controls.contains(a))
                    .collect();
                mcx_dirty_ancilla_gates(controls, target, &ancillas, out);
            }
        }
    }
}

fn lower_gate(gate: &Gate, strategy: McxStrategy, out: &mut Vec<Gate>) {
    let controls = gate.controls();
    match (gate.kind(), controls.len()) {
        // Already elementary.
        (_, 0) if gate.width() == 1 => out.push(gate.clone()),
        (GateKind::X, 1) => out.push(gate.clone()),
        // SWAP family.
        (GateKind::Swap, 0) => {
            let (a, b) = (gate.targets()[0], gate.targets()[1]);
            out.push(Gate::controlled(GateKind::X, vec![a], b));
            out.push(Gate::controlled(GateKind::X, vec![b], a));
            out.push(Gate::controlled(GateKind::X, vec![a], b));
        }
        (GateKind::Swap, _) => {
            // C(SWAP a b) = CX(b→a) · C⁺(X on b, controls + a) · CX(b→a).
            let (a, b) = (gate.targets()[0], gate.targets()[1]);
            out.push(Gate::controlled(GateKind::X, vec![b], a));
            let mut all_controls = controls.to_vec();
            all_controls.push(a);
            lower_mcx(&all_controls, b, strategy, out);
            out.push(Gate::controlled(GateKind::X, vec![b], a));
        }
        // Multi-controlled X.
        (GateKind::X, 2) => out.extend(toffoli_gates(controls[0], controls[1], gate.target())),
        (GateKind::X, _) => lower_mcx(controls, gate.target(), strategy, out),
        // Singly-controlled specials with cheap textbook forms.
        (GateKind::Z, 1) => {
            let t = gate.target();
            out.push(Gate::single(GateKind::H, t));
            out.push(Gate::controlled(GateKind::X, vec![controls[0]], t));
            out.push(Gate::single(GateKind::H, t));
        }
        (GateKind::Phase(l), 1) => cp_gates(controls[0], gate.target(), *l, out),
        (GateKind::Rz(t), 1) => {
            let tq = gate.target();
            out.push(Gate::single(GateKind::Rz(t / 2.0), tq));
            out.push(Gate::controlled(GateKind::X, vec![controls[0]], tq));
            out.push(Gate::single(GateKind::Rz(-t / 2.0), tq));
            out.push(Gate::controlled(GateKind::X, vec![controls[0]], tq));
        }
        // General singly-controlled unitary: ABC.
        (kind, 1) => {
            let m = kind.base_matrix().expect("single-target kind");
            out.extend(controlled_unitary_gates(controls[0], gate.target(), &m));
        }
        // General multi-controlled unitary: ABC with C^k X, plus the
        // controlled global phase pushed onto the controls.
        (kind, _) => {
            let m = kind.base_matrix().expect("single-target kind");
            let ZyzAngles {
                alpha,
                beta,
                gamma,
                delta,
            } = zyz(&m);
            let t = gate.target();
            push_rz(out, (delta - beta) / 2.0, t);
            lower_mcx(controls, t, strategy, out);
            push_rz(out, -(delta + beta) / 2.0, t);
            push_ry(out, -gamma / 2.0, t);
            lower_mcx(controls, t, strategy, out);
            push_ry(out, gamma / 2.0, t);
            push_rz(out, beta, t);
            if !approx::approx_zero(alpha) {
                // C^k(e^{iα} I) = C^{k-1} P(α) on the controls.
                let (last, rest) = controls.split_last().expect("k >= 2");
                mcp_gates(rest, *last, alpha, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use qnum::{Complex, MatrixN};

    fn assert_equivalent(a: &Circuit, b: &Circuit) {
        let (ua, ub) = (dense::unitary(a), dense::unitary(b));
        assert!(
            ua.approx_eq_up_to_phase(&ub),
            "circuits differ:\n{a}\nvs\n{b}"
        );
    }

    fn assert_strictly_equal(a: &Circuit, b: &Circuit) {
        let (ua, ub) = (dense::unitary(a), dense::unitary(b));
        assert!(ua.approx_eq(&ub), "circuits differ (strict)");
    }

    #[test]
    fn zyz_reconstructs_common_gates() {
        for m in [
            Matrix2::hadamard(),
            Matrix2::pauli_x(),
            Matrix2::pauli_y(),
            Matrix2::pauli_z(),
            Matrix2::phase(0.3),
            Matrix2::rx(1.1),
            Matrix2::ry(-0.7),
            Matrix2::rz(2.9),
            Matrix2::u3(0.4, 1.5, -2.6),
        ] {
            let a = zyz(&m);
            let rebuilt = Matrix2::rz(a.beta)
                .mul(&Matrix2::ry(a.gamma))
                .mul(&Matrix2::rz(a.delta))
                .scale(Complex::cis(a.alpha));
            assert!(rebuilt.approx_eq(&m), "zyz failed for {m}");
        }
    }

    #[test]
    fn controlled_unitary_matches_ir_gate() {
        for kind in [
            GateKind::H,
            GateKind::Y,
            GateKind::Sx,
            GateKind::T,
            GateKind::Rx(0.9),
            GateKind::U3(1.2, 0.3, -0.8),
        ] {
            let mut reference = Circuit::new(2);
            reference.push(Gate::controlled(kind, vec![0], 1));
            let mut lowered = Circuit::new(2);
            lowered.extend(controlled_unitary_gates(0, 1, &kind.base_matrix().unwrap()));
            assert_strictly_equal(&reference, &lowered);
            assert!(lowered.is_elementary());
        }
    }

    #[test]
    fn toffoli_network_is_exact() {
        let mut reference = Circuit::new(3);
        reference.ccx(0, 1, 2);
        let mut lowered = Circuit::new(3);
        lowered.extend(toffoli_gates(0, 1, 2));
        assert_strictly_equal(&reference, &lowered);
    }

    #[test]
    fn swap_and_cz_and_cp_lower_exactly() {
        let mut c = Circuit::new(3);
        c.swap(0, 2).cz(1, 0).cp(0.7, 2, 1).crz(1.3, 0, 1);
        let lowered = decompose_to_cx_and_single_qubit(&c);
        assert!(lowered.is_elementary());
        assert_equivalent(&c, &lowered);
    }

    #[test]
    fn crz_is_phase_exact_only_up_to_nothing() {
        // CRZ lowering must be *strictly* equal (no stray global phase).
        let mut c = Circuit::new(2);
        c.crz(0.9, 0, 1);
        let lowered = decompose_to_cx_and_single_qubit(&c);
        assert_strictly_equal(&c, &lowered);
    }

    #[test]
    fn mcx_free_is_exact_for_three_and_four_controls() {
        for k in [3usize, 4] {
            let mut reference = Circuit::new(k + 1);
            reference.mcx((0..k).collect(), k);
            let lowered = decompose_to_cx_and_single_qubit(&reference);
            assert!(lowered.is_elementary());
            assert_strictly_equal(&reference, &lowered);
        }
    }

    #[test]
    fn mcz_lowering_is_exact() {
        let mut reference = Circuit::new(4);
        reference.mcz(vec![0, 1, 2], 3);
        let lowered = decompose_to_cx_and_single_qubit(&reference);
        assert!(lowered.is_elementary());
        assert_strictly_equal(&reference, &lowered);
    }

    #[test]
    fn controlled_swap_lowering_is_exact() {
        let mut reference = Circuit::new(3);
        reference.cswap(0, 1, 2);
        let lowered = decompose_to_cx_and_single_qubit(&reference);
        assert!(lowered.is_elementary());
        assert_strictly_equal(&reference, &lowered);
    }

    #[test]
    fn dirty_vchain_is_exact_as_full_unitary() {
        // 3 controls, 1 ancilla — check against MCX ⊗ I on all 2⁵ basis
        // states, which covers dirty (non-zero) ancilla values.
        let mut reference = Circuit::new(5);
        reference.mcx(vec![0, 1, 2], 3);
        let mut lowered = Circuit::new(5);
        let mut gates = Vec::new();
        mcx_dirty_ancilla_gates(&[0, 1, 2], 3, &[4], &mut gates);
        lowered.extend(gates);
        assert_strictly_equal(&reference, &lowered);
    }

    #[test]
    fn dirty_vchain_four_controls() {
        let mut reference = Circuit::new(7);
        reference.mcx(vec![0, 1, 2, 3], 4);
        let mut lowered = Circuit::new(7);
        let mut gates = Vec::new();
        mcx_dirty_ancilla_gates(&[0, 1, 2, 3], 4, &[5, 6], &mut gates);
        lowered.extend(gates);
        assert_strictly_equal(&reference, &lowered);
    }

    #[test]
    fn decompose_with_ancillas_widens_and_preserves() {
        let mut c = Circuit::new(5);
        c.h(0).mcx(vec![0, 1, 2, 3], 4).t(2).mcz(vec![0, 1, 2], 4);
        let lowered = decompose_with_dirty_ancillas(&c);
        assert_eq!(lowered.n_qubits(), 5 + 2);
        assert!(lowered.is_elementary());
        let widened = c.widened(lowered.n_qubits());
        assert_strictly_equal(&widened, &lowered);
    }

    #[test]
    fn grover_decomposition_matches_paper_qubit_inflation() {
        // Grover on k search qubits has k−1 controls → k−3 ancillas, so
        // k = 6 → n = 9, k = 7 → n = 11 … as in the paper's Table I.
        let g6 = crate::generators::grover(6, 0, 1);
        assert_eq!(decompose_with_dirty_ancillas(&g6).n_qubits(), 9);
        let g7 = crate::generators::grover(7, 0, 1);
        assert_eq!(decompose_with_dirty_ancillas(&g7).n_qubits(), 11);
    }

    #[test]
    fn decompose_preserves_bigger_mixed_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .ccx(0, 1, 2)
            .cswap(2, 0, 3)
            .cp(0.4, 3, 1)
            .mcx(vec![0, 1, 3], 2)
            .swap(1, 3)
            .ch(0, 2);
        let lowered = decompose_to_cx_and_single_qubit(&c);
        assert!(lowered.is_elementary());
        let (ua, ub) = (dense::unitary(&c), dense::unitary(&lowered));
        assert!(ua.approx_eq_up_to_phase(&ub));
    }

    #[test]
    fn elementary_circuits_pass_through() {
        let c = crate::generators::random_clifford_t(4, 80, 2);
        let lowered = decompose_to_cx_and_single_qubit(&c);
        assert_eq!(lowered.len(), c.len());
        assert!(dense::unitary(&lowered).approx_eq(&dense::unitary(&c)));
    }

    #[test]
    fn identity_stays_identity() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).ccx(0, 1, 2);
        let lowered = decompose_to_cx_and_single_qubit(&c);
        assert!(dense::unitary(&lowered).approx_eq(&MatrixN::identity(3)));
    }
}
