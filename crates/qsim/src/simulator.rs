//! The circuit simulator: applies gates to state vectors.

use qcirc::{Circuit, Gate, GateKind};
use qnum::Complex;

use crate::kernels;
use crate::state::StateVector;

/// A statevector simulator.
///
/// Simulation of one computational basis state is exactly the construction
/// of one *column* of the circuit unitary by matrix-vector products — the
/// `O(m·2ⁿ)` operation the paper's flow uses in place of `O(m·4ⁿ)`
/// matrix-matrix products.
///
/// # Examples
///
/// ```
/// use qsim::Simulator;
///
/// let bell = qcirc::generators::bell();
/// let out = Simulator::new().run_basis(&bell, 0);
/// assert!((out.probability(0b00) - 0.5).abs() < 1e-10);
/// assert!((out.probability(0b11) - 0.5).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    threads: usize,
}

impl Simulator {
    /// Creates a sequential simulator.
    #[must_use]
    pub fn new() -> Self {
        Simulator { threads: 1 }
    }

    /// Creates a simulator that splits kernels over `threads` OS threads for
    /// states with at least 2¹⁸ amplitudes (smaller states run sequentially —
    /// thread spawn overhead dominates below that).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        Simulator { threads }
    }

    /// Simulates `circuit` on the basis state `|basis⟩`, yielding the
    /// `basis`-th column of the circuit unitary.
    ///
    /// # Panics
    ///
    /// Panics if `basis ≥ 2ⁿ` or the circuit exceeds
    /// [`StateVector::MAX_QUBITS`].
    #[must_use]
    pub fn run_basis(&self, circuit: &Circuit, basis: u64) -> StateVector {
        let mut state = StateVector::basis(circuit.n_qubits(), basis);
        self.run_inplace(circuit, &mut state);
        state
    }

    /// Simulates `circuit` on a copy of `initial`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn run(&self, circuit: &Circuit, initial: &StateVector) -> StateVector {
        let mut state = initial.clone();
        self.run_inplace(circuit, &mut state);
        state
    }

    /// Simulates `circuit` directly on `state`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn run_inplace(&self, circuit: &Circuit, state: &mut StateVector) {
        assert_eq!(
            circuit.n_qubits(),
            state.n_qubits(),
            "circuit and state qubit counts differ"
        );
        for gate in circuit.gates() {
            self.apply_gate(state, gate);
        }
    }

    /// Applies a single gate to `state`.
    ///
    /// # Panics
    ///
    /// Panics if the gate does not fit the state's register.
    pub fn apply_gate(&self, state: &mut StateVector, gate: &Gate) {
        assert!(
            gate.max_qubit() < state.n_qubits(),
            "gate {gate} exceeds the state's {} qubits",
            state.n_qubits()
        );
        let control_mask: usize = gate.controls().iter().map(|&q| 1usize << q).sum();
        let parallel = self.threads > 1 && state.dim() >= (1 << 18);
        match gate.kind() {
            GateKind::Swap => {
                let (a, b) = (gate.targets()[0], gate.targets()[1]);
                kernels::apply_controlled_swap(state.amplitudes_mut(), control_mask, a, b);
            }
            kind => {
                let m = kind.base_matrix().expect("single-target kind");
                if parallel {
                    crate::parallel::apply_controlled_single_parallel(
                        state.amplitudes_mut(),
                        control_mask,
                        gate.target(),
                        &m,
                        self.threads,
                    );
                } else {
                    kernels::apply_controlled_single(
                        state.amplitudes_mut(),
                        control_mask,
                        gate.target(),
                        &m,
                    );
                }
            }
        }
    }

    /// Simulates both circuits on `|basis⟩` and returns the inner product
    /// `⟨u_basis | u′_basis⟩` of the outputs — the paper's per-simulation
    /// equivalence probe (1 for equivalent circuits, ≠ 1 is a proof of
    /// non-equivalence).
    ///
    /// # Panics
    ///
    /// Panics if the circuits' qubit counts differ or `basis` is out of
    /// range.
    #[must_use]
    pub fn probe_basis(&self, g: &Circuit, g_prime: &Circuit, basis: u64) -> Complex {
        assert_eq!(
            g.n_qubits(),
            g_prime.n_qubits(),
            "circuits must have equal qubit counts"
        );
        let a = self.run_basis(g, basis);
        let b = self.run_basis(g_prime, basis);
        a.inner_product(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn ghz_state_has_two_peaks() {
        let out = Simulator::new().run_basis(&generators::ghz(4), 0);
        assert!((out.probability(0) - 0.5).abs() < 1e-10);
        assert!((out.probability(0b1111) - 0.5).abs() < 1e-10);
        assert!(out.is_normalized());
    }

    #[test]
    fn matches_dense_reference_on_random_circuits() {
        let sim = Simulator::new();
        for seed in 0..4 {
            let c = generators::random_clifford_t(5, 80, seed);
            let u = qcirc::dense::unitary(&c);
            for basis in [0u64, 7, 19, 31] {
                let got = sim.run_basis(&c, basis);
                let expect = u.column(basis as usize);
                for (a, b) in got.amplitudes().iter().zip(expect.iter()) {
                    assert!(a.approx_eq(*b), "seed {seed} basis {basis}");
                }
            }
        }
    }

    #[test]
    fn circuit_then_inverse_is_identity() {
        let sim = Simulator::new();
        let c = generators::qft(5, true);
        let mut roundtrip = c.clone();
        roundtrip.append(&c.inverse());
        for basis in [0u64, 5, 21, 31] {
            let out = sim.run_basis(&roundtrip, basis);
            assert!(out.probability(basis) > 1.0 - 1e-9);
        }
    }

    #[test]
    fn adder_computes_sums_on_basis_states() {
        // Cuccaro layout: cin=0, b = 1..=n, a = n+1..=2n, cout = 2n+1.
        let n = 3;
        let adder = generators::cuccaro_adder(n);
        let sim = Simulator::new();
        for (a_val, b_val, cin) in [(1u64, 2u64, 0u64), (5, 3, 0), (7, 7, 1), (0, 0, 1), (6, 1, 1)]
        {
            let input = cin | (b_val << 1) | (a_val << (1 + n));
            let out = sim.run_basis(&adder, input);
            let sum = a_val + b_val + cin;
            let expected_b = sum & ((1 << n) - 1);
            let carry = (sum >> n) & 1;
            let expected = cin | (expected_b << 1) | (a_val << (1 + n)) | (carry << (2 * n + 1));
            assert!(
                out.probability(expected) > 1.0 - 1e-9,
                "a={a_val} b={b_val} cin={cin}: expected basis {expected:b}, state {out}"
            );
        }
    }

    #[test]
    fn probe_basis_detects_difference() {
        let sim = Simulator::new();
        let g = generators::ghz(3);
        let mut g_prime = g.clone();
        g_prime.x(2);
        let p = sim.probe_basis(&g, &g_prime, 0);
        assert!(!p.approx_one());
        let same = sim.probe_basis(&g, &g.clone(), 0);
        assert!(same.approx_one());
    }

    #[test]
    fn grover_amplifies_marked_element() {
        let k = 4;
        let marked = 0b1011u64;
        let c = generators::grover(k, marked, generators::optimal_grover_iterations(k));
        let out = Simulator::new().run_basis(&c, 0);
        let p = out.probability(marked);
        assert!(p > 0.9, "Grover should amplify the marked element, got {p}");
    }

    #[test]
    fn supremacy_circuit_spreads_amplitude() {
        let c = generators::supremacy_2d(2, 2, 8, 3);
        let out = Simulator::new().run_basis(&c, 0);
        assert!(out.is_normalized());
        // Porter-Thomas-like: no basis state should dominate.
        for i in 0..16 {
            assert!(out.probability(i) < 0.9);
        }
    }

    #[test]
    #[should_panic(expected = "qubit counts differ")]
    fn mismatched_state_rejected() {
        let c = generators::bell();
        let mut s = StateVector::zero(3);
        Simulator::new().run_inplace(&c, &mut s);
    }
}
