//! A deterministic fan-out/ordered-merge worker pool.
//!
//! Both the fault-injection campaign (trial level) and the service layer's
//! batch queue need the same parallel shape: `N` independent work items,
//! `W` scoped worker threads claiming item indices from a shared counter,
//! and results merged back **in item order** — never completion order — so
//! the output is byte-identical at any worker count. This module is that
//! shape, extracted so every caller inherits the determinism contract
//! instead of re-implementing it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0), f(1), …, f(n_items − 1)` across `workers` scoped threads and
/// returns the results in item order.
///
/// With `workers <= 1` (or fewer than two items) everything runs on the
/// calling thread with no pool at all, so the single-threaded path has zero
/// synchronization overhead and — by construction — the same output.
///
/// # Panics
///
/// Propagates a panic from any worker (the closure is expected not to
/// panic on well-formed inputs).
///
/// # Examples
///
/// ```
/// let squares = qcec::pool::run_ordered(5, 3, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_ordered<T, F>(n_items: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n_items.max(1));
    if workers <= 1 || n_items <= 1 {
        return (0..n_items).map(f).collect();
    }

    // Workers claim item indices in order from a shared counter and report
    // `(index, output)` pairs; completion order is irrelevant because the
    // merge below re-sorts into item order by slot.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n_items, || None);
    let chunks = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_items {
                            break;
                        }
                        done.push((i, f(i)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect::<Vec<_>>()
    });
    for (i, output) in chunks.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "item {i} executed twice");
        slots[i] = Some(output);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_item_order_at_any_worker_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3 + 1).collect();
        for workers in [1, 2, 5, 16] {
            assert_eq!(run_ordered(97, workers, |i| i * 3 + 1), expected);
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_ordered(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_ordered(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let out = run_ordered(40, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 40);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }
}
